"""Tests for the pluggable engine registry (repro.engines).

The acceptance bar of the registry port: at least seven engines behind
one protocol, ``select_engine`` plans by capability (exact below the
crossover, MPC/approximate beyond it, guarantee classes honoured), an
unsatisfiable request raises the typed :class:`NoEngineError` (never a
bare ``KeyError``), the MPC engines' ledgers stay byte-identical to the
pre-registry driver paths (golden fixtures), the two new approximators
pass their own guarantee checks, and the service admits queries through
engine capabilities.
"""

import asyncio
import json
import pathlib

import numpy as np
import pytest

from repro.engines import (EngineRequest, NoEngineError, all_engines,
                           default_engine, distances, engines_for,
                           get_engine, select_engine, workload_kind)
from repro.engines.builtin import EXACT_CROSSOVER_N
from repro.strings import levenshtein, ulam_distance
from repro.workloads.permutations import planted_pair as perm_pair
from repro.workloads.strings import planted_pair as str_pair

GOLDEN = pathlib.Path(__file__).parent / "golden"

#: Per-round ledger fields frozen by tests/golden (generate.py).
LEDGER_FIELDS = ("name", "machines", "max_input_words", "max_output_words",
                 "total_input_words", "total_output_words", "max_work",
                 "total_work")


def _ledger(stats) -> list:
    rounds = [{f: getattr(r, f) for f in LEDGER_FIELDS}
              for r in stats.rounds]
    return json.loads(json.dumps(rounds, sort_keys=True))


def _golden(case: str) -> dict:
    return json.loads((GOLDEN / f"{case}.json").read_text())


class TestRegistrySurface:
    def test_at_least_seven_engines_including_new_approximators(self):
        names = {e.caps.name for e in all_engines()}
        assert len(names) >= 7
        assert {"ulam-mpc", "edit-mpc", "hss", "beghs", "exact-ulam",
                "exact-edit", "ako-polylog",
                "cgks-subquadratic"} <= names

    def test_distances_cover_both_metrics(self):
        assert set(distances()) >= {"ulam", "edit"}
        for d in distances():
            assert engines_for(d), f"no engine answers {d}"

    def test_default_engine_is_the_papers_primary(self):
        assert default_engine("ulam").caps.name == "ulam-mpc"
        assert default_engine("edit").caps.name == "edit-mpc"

    def test_workload_kind_follows_duplicate_free_precondition(self):
        assert workload_kind("ulam") == "perm"
        assert workload_kind("edit") == "str"

    def test_unknown_engine_raises_typed_error_not_keyerror(self):
        with pytest.raises(NoEngineError) as ei:
            get_engine("no-such-engine")
        assert not isinstance(ei.value, KeyError)
        assert isinstance(ei.value, LookupError)
        assert "ulam-mpc" in str(ei.value)  # lists what exists

    def test_capabilities_are_self_describing(self):
        for eng in all_engines():
            caps = eng.capabilities()
            assert caps.distances
            assert caps.guarantee_class in ("exact", "1+eps", "3+eps",
                                            "polylog")
            assert caps.cost.predicted_work(1024) > 0
            assert caps.regime.describe()


class TestSelectEngine:
    def test_exact_wins_below_crossover(self):
        s, t, _ = perm_pair(256, 8, seed=0, style="mixed")
        eng = select_engine(EngineRequest(distance="ulam", s=s, t=t))
        assert eng.caps.name == "exact-ulam"
        s2, t2, _ = str_pair(256, 8, sigma=4, seed=0)
        eng2 = select_engine(EngineRequest(distance="edit", s=s2, t=t2))
        assert eng2.caps.name == "exact-edit"

    def test_exact_refused_above_crossover(self):
        n = EXACT_CROSSOVER_N + 1
        s = np.arange(n, dtype=np.int64)
        t = np.roll(s, 7)
        eng = select_engine(EngineRequest(distance="ulam", s=s, t=t))
        assert eng.caps.name == "ulam-mpc"  # the only ulam engine left

    def test_guarantee_class_filters_weaker_engines(self):
        s, t, _ = str_pair(128, 8, sigma=4, seed=1)
        eng = select_engine(EngineRequest(distance="edit", s=s, t=t,
                                          guarantee="1+eps"))
        # exact (stronger) stays admissible; 3+eps/polylog must not win.
        assert eng.caps.guarantee_class in ("exact", "1+eps")
        with pytest.raises(NoEngineError):
            select_engine(EngineRequest(distance="ulam", s=[1, 1, 2],
                                        t=[2, 1, 1], guarantee="exact"))

    def test_duplicates_rule_out_every_ulam_engine(self):
        with pytest.raises(NoEngineError) as ei:
            select_engine(EngineRequest(distance="ulam", s=[1, 1, 2],
                                        t=[2, 1, 1]))
        assert "duplicate-free" in str(ei.value)
        assert ei.value.reasons  # per-engine refusal listing

    def test_unknown_distance_raises_with_reasons(self):
        with pytest.raises(NoEngineError):
            select_engine(EngineRequest(distance="hamming",
                                        s=[1], t=[2]))

    def test_measured_history_overrides_cost_model(self):
        s, t, _ = perm_pair(256, 8, seed=2, style="mixed")
        history = [{"engine": "ulam-mpc", "params": {"n": 256},
                    "summary": {"total_work": 10}}]
        eng = select_engine(EngineRequest(distance="ulam", s=s, t=t),
                            history=history)
        assert eng.caps.name == "ulam-mpc"
        # Pre-registry records (no engine field) are ignored.
        legacy = [{"command": "ulam", "params": {"n": 256},
                   "summary": {"total_work": 10}}]
        eng2 = select_engine(EngineRequest(distance="ulam", s=s, t=t),
                             history=legacy)
        assert eng2.caps.name == "exact-ulam"

    def test_paper_policy_prefers_primary_engines(self):
        s, t, _ = str_pair(128, 8, sigma=4, seed=3)
        eng = select_engine(EngineRequest(distance="edit", s=s, t=t),
                            policy="paper")
        assert eng.caps.name == "edit-mpc"
        with pytest.raises(ValueError):
            select_engine(EngineRequest(distance="edit", s=s, t=t),
                          policy="fastest")


class TestGoldenEquivalenceThroughEngines:
    """The registry port must not change a single ledger word."""

    def test_ulam_engine_matches_fixture(self):
        fixture = _golden("ulam")
        s, t, _ = perm_pair(256, 16, seed=3, style="mixed")
        eres = get_engine("ulam-mpc").solve(EngineRequest(
            distance="ulam", s=s, t=t, x=0.4, eps=0.5, seed=7))
        assert eres.distance == fixture["distance"]
        assert _ledger(eres.stats) == fixture["rounds"]

    def test_edit_engine_matches_fixture(self):
        fixture = _golden("edit_small")
        s, t, _ = str_pair(256, 12, sigma=4, seed=5)
        eres = get_engine("edit-mpc").solve(EngineRequest(
            distance="edit", s=s, t=t, x=0.25, eps=1.0, seed=9))
        assert eres.distance == fixture["distance"]
        assert eres.extra["regime"] == fixture["regime"]
        assert eres.extra["accepted_guess"] == fixture["accepted_guess"]
        assert _ledger(eres.stats) == fixture["rounds"]

    def test_hss_engine_matches_fixture(self):
        fixture = _golden("hss")
        s, t, _ = str_pair(128, 8, sigma=4, seed=10)
        eres = get_engine("hss").solve(EngineRequest(
            distance="edit", s=s, t=t, x=0.25, eps=1.0))
        assert eres.distance == fixture["distance"]
        assert _ledger(eres.stats) == fixture["rounds"]

    def test_beghs_engine_matches_fixture(self):
        fixture = _golden("beghs")
        s, t, _ = str_pair(128, 8, sigma=4, seed=12)
        eres = get_engine("beghs").solve(EngineRequest(
            distance="edit", s=s, t=t, eps=1.0))
        assert eres.distance == fixture["distance"]
        assert _ledger(eres.stats) == fixture["rounds"]

    def test_exact_engines_match_fixture(self):
        fixture = _golden("single_machine")
        s1, t1, _ = str_pair(150, 9, sigma=4, seed=14)
        s2, t2, _ = perm_pair(150, 9, seed=15, style="mixed")
        ed = get_engine("exact-edit").solve(EngineRequest(
            distance="edit", s=s1, t=t1))
        ul = get_engine("exact-ulam").solve(EngineRequest(
            distance="ulam", s=s2, t=t2))
        assert ed.distance == fixture["edit_distance"]
        assert ul.distance == fixture["ulam_distance"]
        assert _ledger(ed.stats) == fixture["edit_rounds"]
        assert _ledger(ul.stats) == fixture["ulam_rounds"]


class TestEngineGuarantees:
    """Every engine passes its own guarantee check on a planted pair."""

    @pytest.mark.parametrize("name", sorted(
        e.caps.name for e in all_engines()
        if {"ulam", "edit"} & set(e.caps.distances)))
    def test_engine_passes_own_guarantee_check(self, name):
        eng = get_engine(name)
        distance = eng.caps.distances[0]
        if workload_kind(distance) == "perm" or \
                eng.caps.regime.requires_duplicate_free:
            s, t, _ = perm_pair(192, 10, seed=4, style="mixed")
        else:
            s, t, _ = str_pair(192, 10, sigma=4, seed=4)
        eres = eng.solve(EngineRequest(distance=distance, s=s, t=t))
        report = eng.check_guarantees(s, t, eres)
        assert report.passed, report.to_dict()

    def test_new_approximators_return_valid_upper_bounds(self):
        s, t, _ = str_pair(256, 12, sigma=4, seed=6)
        exact = levenshtein(s, t)
        for name in ("ako-polylog", "cgks-subquadratic"):
            eres = get_engine(name).solve(EngineRequest(
                distance="edit", s=s, t=t))
            assert exact <= eres.distance <= len(s) + len(t)

    def test_exact_engines_agree_with_kernels(self):
        s, t, _ = str_pair(160, 9, sigma=4, seed=7)
        p, q, _ = perm_pair(160, 9, seed=7, style="mixed")
        assert get_engine("exact-edit").solve(EngineRequest(
            distance="edit", s=s, t=t)).distance == levenshtein(s, t)
        assert get_engine("exact-ulam").solve(EngineRequest(
            distance="ulam", s=p, t=q)).distance == ulam_distance(p, q)


class TestServiceEngineAdmission:
    """submit(engine=...) resolves and admits through capabilities."""

    def _run(self, coro):
        return asyncio.run(coro)

    def test_named_engine_runs_and_tags_outcome(self):
        from repro.service import DistanceService

        async def main():
            async with DistanceService() as svc:
                s, t, _ = str_pair(96, 6, sigma=4, seed=0)
                cid = svc.register_corpus(s, t)
                out = await svc.submit("edit", cid, engine="exact-edit")
                assert out.engine == "exact-edit"
                assert out.distance == levenshtein(s, t)
                assert out.guarantees_passed

        self._run(main())

    def test_auto_engine_plans_per_corpus(self):
        from repro.service import DistanceService

        async def main():
            async with DistanceService() as svc:
                s, t, _ = perm_pair(96, 6, seed=1, style="mixed")
                cid = svc.register_corpus(s, t)
                out = await svc.submit("ulam", cid, engine="auto")
                assert out.engine == "exact-ulam"  # below crossover
                assert out.distance == ulam_distance(s, t)

        self._run(main())

    def test_engine_distance_mismatch_rejected_at_admission(self):
        from repro.service import AdmissionError, DistanceService

        async def main():
            async with DistanceService() as svc:
                s, t, _ = str_pair(96, 6, sigma=4, seed=2)
                cid = svc.register_corpus(s, t)
                with pytest.raises(AdmissionError):
                    svc.submit("edit", cid, engine="ulam-mpc")
                with pytest.raises(AdmissionError):
                    svc.submit("edit", cid, engine="no-such-engine")

        self._run(main())

    def test_duplicate_corpus_rejected_for_ulam_engines(self):
        from repro.service import AdmissionError, DistanceService

        async def main():
            async with DistanceService() as svc:
                cid = svc.register_corpus([1, 1, 2], [2, 1, 1])
                with pytest.raises(AdmissionError):
                    svc.submit("ulam", cid, engine="exact-ulam")

        self._run(main())

    def test_default_engine_is_unchanged_mpc_path(self):
        from repro.service import DistanceService

        async def main():
            async with DistanceService() as svc:
                s, t, _ = str_pair(96, 6, sigma=4, seed=3)
                cid = svc.register_corpus(s, t)
                out = await svc.submit("edit", cid)
                assert out.engine == "edit-mpc"

        self._run(main())
