"""Unit tests for Algorithm 2 (Ulam combining DP)."""

import itertools

from repro.ulam import combine_tuples

import pytest


class TestEmptyAndTrivial:
    def test_no_tuples_returns_full_substitution(self):
        assert combine_tuples([], 10, 10) == 10
        assert combine_tuples([], 10, 14) == 14

    def test_single_perfect_tuple(self):
        # block covers all of s, window covers all of t, distance 0
        assert combine_tuples([(0, 8, 0, 8, 0)], 8, 8) == 0

    def test_single_tuple_with_tails(self):
        # block [0,4) → window [0,4), d=1; remaining 4 of each side
        assert combine_tuples([(0, 4, 0, 4, 1)], 8, 8) == 1 + 4

    def test_head_cost_uses_max(self):
        # block [4,8) → window [2,8): head is max(4, 2) = 4
        assert combine_tuples([(4, 8, 2, 8, 0)], 8, 8) == 4


class TestChaining:
    def test_two_tuples_chain(self):
        tuples = [(0, 4, 0, 4, 1), (4, 8, 4, 8, 2)]
        assert combine_tuples(tuples, 8, 8) == 3

    def test_gap_between_tuples_costs_max(self):
        # gap of 2 in s and 3 in t between the tuples
        tuples = [(0, 2, 0, 2, 0), (4, 8, 5, 9, 0)]
        assert combine_tuples(tuples, 8, 9) == max(2, 3)

    def test_overlapping_windows_cannot_chain(self):
        # second window starts before first ends: chain disallowed, so
        # the best solution uses one tuple plus substitution tails
        tuples = [(0, 4, 0, 6, 0), (4, 8, 4, 8, 0)]
        result = combine_tuples(tuples, 8, 8)
        assert result == min(0 + max(4, 2),   # first tuple + tail
                             max(4, 4) + 0)   # head + second tuple

    def test_sum_mode_adds_gaps(self):
        tuples = [(0, 2, 0, 2, 0), (4, 8, 5, 9, 0)]
        assert combine_tuples(tuples, 8, 9, mode="sum") == 2 + 3

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            combine_tuples([], 4, 4, mode="avg")


class TestOptimalityAgainstBruteForce:
    def _brute(self, tuples, n_s, n_t):
        """Try every chain of tuples (all subsets in every valid order)."""
        best = max(n_s, n_t)
        idx = sorted(range(len(tuples)), key=lambda a: tuples[a][0])
        for r in range(1, len(tuples) + 1):
            for combo in itertools.combinations(idx, r):
                ls = [tuples[a] for a in combo]
                ok = all(p[1] <= q[0] and p[3] <= q[2]
                         for p, q in zip(ls, ls[1:]))
                if not ok:
                    continue
                cost = max(ls[0][0], ls[0][2]) + ls[0][4]
                for p, q in zip(ls, ls[1:]):
                    cost += max(q[0] - p[1], q[2] - p[3]) + q[4]
                cost += max(n_s - ls[-1][1], n_t - ls[-1][3])
                best = min(best, cost)
        return best

    def test_matches_exhaustive_chaining(self, rng):
        for _ in range(40):
            n_s = n_t = 12
            tuples = []
            for _ in range(int(rng.integers(0, 6))):
                lo = int(rng.integers(0, 10))
                hi = int(rng.integers(lo + 1, 13))
                sp = int(rng.integers(0, 10))
                ep = int(rng.integers(sp, 13))
                d = int(rng.integers(0, 5))
                tuples.append((lo, hi, sp, ep, d))
            assert combine_tuples(tuples, n_s, n_t) == \
                self._brute(tuples, n_s, n_t)

    def test_result_never_exceeds_trivial_bound(self, rng):
        for _ in range(20):
            tuples = [(0, 3, 0, 3, int(rng.integers(0, 30)))]
            assert combine_tuples(tuples, 6, 6) <= 6


class TestUpperBoundValidity:
    def test_chain_cost_is_achievable(self, rng):
        """The DP value must always upper-bound the true Ulam distance
        when tuple distances are true distances."""
        from repro.strings import ulam_distance
        from repro.workloads.permutations import planted_pair
        s, t, _ = planted_pair(24, 3, seed=11)
        # build tuples from actual substring distances on a grid
        tuples = []
        for lo in range(0, 24, 8):
            for sp in range(max(0, lo - 4), min(24, lo + 4) + 1, 2):
                ep = min(sp + 8, 24)
                d = ulam_distance(s[lo:lo + 8], t[sp:ep])
                tuples.append((lo, lo + 8, sp, ep, d))
        result = combine_tuples(tuples, 24, 24)
        assert result >= ulam_distance(s, t)
