"""Live observability: query-correlated tracing, exporter, SLO monitor.

The acceptance bar of the observability layer: a shared trace stream
from ``>= 8`` mixed concurrent queries can be sliced back into each
query's exact round sequence and per-query metric delta — byte-
identical to a one-shot reference run — while ``/metrics`` and
``/healthz`` answer on a *live* service and the SLO monitor burns only
when queries actually violate their budgets.
"""

import json
import threading
import time
import urllib.error
import urllib.request

from repro.analysis import filter_spans, query_index, round_sequence
from repro.editdistance import mpc_edit_distance
from repro.metrics import enable
from repro.mpc import MPCSimulator, Tracer
from repro.mpc.telemetry import Span, export_chrome_trace
from repro.obs import (SLO, ObservabilityServer, QuerySample, SLOMonitor,
                       burn_rate, default_slos, prometheus_exposition,
                       render_health, sample_from_record)
from repro.params import EditParams, UlamParams
from repro.service import run_workload
from repro.ulam import mpc_ulam
from repro.workloads.permutations import planted_pair as perm_pair
from repro.workloads.strings import planted_pair as str_pair

N = 96
BUDGET = 6
ULAM_KW = {"x": 0.25, "eps": 0.5}
EDIT_KW = {"x": 0.25, "eps": 1.0}


def _ledger(stats) -> str:
    summary = stats.summary()
    summary.pop("wall_seconds", None)
    return json.dumps(summary, sort_keys=True)


def _mixed_queries(n_queries: int = 8):
    s_p, t_p, _ = perm_pair(N, BUDGET, seed=0, style="mixed")
    s_s, t_s, _ = str_pair(N, BUDGET, sigma=4, seed=0)
    out = []
    for i in range(n_queries):
        if i % 2 == 0:
            out.append({"algo": "ulam", "s": s_p, "t": t_p,
                        "seed": i, **ULAM_KW})
        else:
            out.append({"algo": "edit", "s": s_s, "t": t_s,
                        "seed": i, **EDIT_KW})
    return out


def _traced_reference(query):
    """One-shot run of *query* with its own tracer; returns (result,
    spans)."""
    tracer = Tracer.in_memory()
    if query["algo"] == "ulam":
        params = UlamParams(n=len(query["s"]), **ULAM_KW)
        sim = MPCSimulator(memory_limit=params.memory_limit,
                           tracer=tracer)
        res = mpc_ulam(query["s"], query["t"], seed=query["seed"],
                       sim=sim, **ULAM_KW)
    else:
        params = EditParams(n=len(query["s"]), **EDIT_KW)
        sim = MPCSimulator(memory_limit=params.memory_limit,
                           tracer=tracer)
        res = mpc_edit_distance(query["s"], query["t"],
                                seed=query["seed"], sim=sim, **EDIT_KW)
    return res, tracer.spans


def _http_get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


class TestQueryCorrelatedTracing:
    """The tentpole acceptance test: reconstruct every query from the
    shared stream."""

    def test_eight_concurrent_queries_reconstruct_exactly(self):
        enable()
        queries = _mixed_queries(8)
        references = [_traced_reference(q) for q in queries]
        tracer = Tracer.in_memory()
        outcomes, _ = run_workload(queries, tracer=tracer,
                                   check_guarantees=True)
        spans = tracer.spans

        # Eight distinct query identities in one stream.
        ids = {(qid, tid) for (qid, tid) in query_index(spans)
               if qid >= 0}
        assert len(ids) == 8
        assert len({tid for _, tid in ids}) == 8

        for o, (ref, ref_spans) in zip(outcomes, references):
            mine = filter_spans(spans, o.query_id)
            assert mine, f"query #{o.query_id} has no spans"
            assert mine == filter_spans(spans, o.trace_id)
            assert all(s.trace_id == o.trace_id for s in mine)

            # Exact round schedule, reconstructed out of the
            # interleaved stream (the edit driver re-runs round names
            # across delta guesses, so this is sequence, not set,
            # equality against a traced one-shot reference).
            assert round_sequence(mine) == round_sequence(ref_spans), \
                f"query #{o.query_id} round sequence diverged"

            # Work conservation inside the slice: the successful
            # machine spans alone account for the ledger's total work.
            machine_work = sum(s.work for s in mine
                               if s.kind == "machine" and not s.wasted)
            assert machine_work == o.stats.total_work

            # Per-query metrics delta and full ledger are byte-
            # identical to the pristine one-shot run.
            assert o.metrics == ref.stats.metrics
            assert _ledger(o.stats) == _ledger(ref.stats), \
                f"query #{o.query_id} ledger diverged"

            # The guarantee verdict carries the same correlation ids.
            assert o.guarantees["trace_id"] == o.trace_id
            assert o.guarantees["query_id"] == o.query_id
            assert o.guarantees_passed is True

    def test_one_shot_spans_stay_uncorrelated(self):
        q = _mixed_queries(1)[0]
        _, spans = _traced_reference(q)
        assert spans
        assert all(s.query_id == -1 and s.trace_id == "" for s in spans)
        assert list(query_index(spans)) == [(-1, "")]

    def test_trace_ids_are_deterministic_per_service(self):
        queries = _mixed_queries(2)
        outcomes, _ = run_workload(queries, check_guarantees=False)
        for o in outcomes:
            assert o.trace_id.endswith(f"-q{o.query_id}")


class TestChromeTraceGrouping:
    def test_concurrent_queries_get_distinct_process_groups(self, tmp_path):
        spans = [
            Span(kind="round", name="ulam/1", start=0.0, end=1.0,
                 work=10, query_id=1, trace_id="svc9-q1"),
            Span(kind="machine", name="ulam/1", machine=0, start=0.0,
                 end=0.5, work=10, query_id=1, trace_id="svc9-q1"),
            Span(kind="round", name="ed/1", start=0.2, end=0.9,
                 work=7, query_id=2, trace_id="svc9-q2"),
        ]
        out = tmp_path / "trace.json"
        export_chrome_trace(spans, out)
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        meta = [e for e in events if e.get("ph") == "M"]
        assert {(e["pid"], e["args"]["name"]) for e in meta} \
            == {(1, "query 1 [svc9-q1]"), (2, "query 2 [svc9-q2]")}
        slices = [e for e in events if e.get("ph") == "X"]
        assert {e["pid"] for e in slices} == {1, 2}
        for e in slices:
            assert e["args"]["trace_id"].startswith("svc9-q")
            assert e["args"]["query_id"] in (1, 2)

    def test_uncorrelated_spans_keep_worker_lanes(self, tmp_path):
        spans = [Span(kind="machine", name="r", machine=3, worker=4242,
                      start=0.0, end=1.0, work=5)]
        out = tmp_path / "trace.json"
        export_chrome_trace(spans, out)
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert all(e.get("ph") != "M" for e in events)
        assert events[0]["pid"] == 4242
        assert events[0]["tid"] == 3

    def test_span_args_carry_ledger_and_profile(self, tmp_path):
        spans = [
            Span(kind="machine", name="r", machine=0, start=0.0, end=1.0,
                 work=11, input_words=3, output_words=2,
                 profile={"lis": [2, 40, 0.5]}),
            Span(kind="machine", name="r", machine=1, start=0.5, end=2.0,
                 work=7, wasted=True),
        ]
        out = tmp_path / "trace.json"
        export_chrome_trace(spans, out)
        events = json.loads(out.read_text())["traceEvents"]
        slices = [e for e in events if e.get("ph") == "X"]
        profiled = next(e for e in slices if e["tid"] == 0)
        assert profiled["args"]["work"] == 11
        assert profiled["args"]["input_words"] == 3
        assert profiled["args"]["output_words"] == 2
        assert profiled["args"]["profile"] == {"lis": [2, 40, 0.5]}
        wasted = next(e for e in slices if e["tid"] == 1)
        assert wasted["args"]["wasted"] is True
        assert "profile" not in wasted["args"]  # empty stays absent

    def test_profiled_spans_emit_dp_cells_counter_track(self, tmp_path):
        spans = [
            Span(kind="machine", name="r1", machine=0, start=0.0,
                 end=1.0, profile={"lis": [1, 40, 0.5]}),
            Span(kind="machine", name="r2", machine=0, start=1.0,
                 end=2.0, profile={"lis": [1, 10, 0.1],
                                   "banded": [1, 5, 0.1]}),
        ]
        out = tmp_path / "trace.json"
        export_chrome_trace(spans, out)
        events = json.loads(out.read_text())["traceEvents"]
        counters = [e for e in events if e.get("ph") == "C"]
        assert [e["name"] for e in counters] == ["kernel dp_cells"] * 2
        # Cumulative per-kernel cells, sampled at each profiled span end.
        assert counters[0]["args"] == {"lis": 40}
        assert counters[1]["args"] == {"lis": 50, "banded": 5}
        assert counters[0]["ts"] < counters[1]["ts"]


class TestExporter:
    def test_endpoints_answer_on_live_service(self):
        enable()
        obs = ObservabilityServer(port=0).start()
        grabbed = {}

        def scrape():
            time.sleep(0.25)
            for ep in ("/metrics", "/healthz", "/readyz"):
                grabbed[ep] = _http_get(obs.url + ep)
            grabbed["/nope"] = _http_get(obs.url + "/nope")

        thread = threading.Thread(target=scrape)
        thread.start()
        try:
            outcomes, _ = run_workload(
                _mixed_queries(4), observer=obs, hold_seconds=1.0,
                check_guarantees=False)
        finally:
            thread.join()
            obs.stop()
        assert len(outcomes) == 4

        code, text = grabbed["/metrics"]
        assert code == 200
        assert "repro_service_up{" in text
        assert " 1" in [line[-2:] for line in text.splitlines()
                        if line.startswith("repro_service_up")]
        assert "repro_service_queries_total{" in text
        assert 'engine="ulam-mpc"' in text
        assert "# TYPE" in text

        code, body = grabbed["/healthz"]
        health = json.loads(body)
        assert code == 200
        assert health["healthy"] is True
        assert health["checks"] == {"executor_alive": True,
                                    "segments_sane": True}
        assert health["admission"] == "open"

        code, body = grabbed["/readyz"]
        assert code == 200
        assert json.loads(body)["ready"] is True

        assert grabbed["/nope"][0] == 404

    def test_concurrent_scrapes_stay_consistent_with_queries_in_flight(
            self):
        """Satellite (c): hammer /metrics and /profile from several
        threads while queries run — no torn Prometheus exposition, every
        /profile snapshot is coherent JSON, and the final per-query
        attribution is consistent with the registry's kernel counters."""
        import re
        from repro.obs.profile import (enable as enable_profiling,
                                       reset_global_profile)
        enable()
        enable_profiling()
        reset_global_profile()
        sample_re = re.compile(
            r"^[A-Za-z_:][A-Za-z0-9_:]*(?:\{[^{}]*\})? -?[0-9.einf+]+$")
        obs = ObservabilityServer(port=0).start()
        scraped = {"metrics": [], "profiles": [], "errors": []}
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    m_code, m_body = _http_get(obs.url + "/metrics")
                    p_code, p_body = _http_get(obs.url + "/profile")
                except OSError as exc:  # pragma: no cover - fail loud
                    scraped["errors"].append(repr(exc))
                    return
                if m_code == 200:
                    scraped["metrics"].append(m_body)
                if p_code == 200:
                    scraped["profiles"].append(p_body)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            outcomes, _ = run_workload(_mixed_queries(6), observer=obs,
                                       check_guarantees=False)
        finally:
            stop.set()
            for t in threads:
                t.join()
        final = json.loads(_http_get(obs.url + "/profile")[1])
        registry_text = _http_get(obs.url + "/metrics")[1]
        obs.stop()

        assert not scraped["errors"], scraped["errors"]
        assert len(outcomes) == 6
        assert scraped["metrics"] and scraped["profiles"]
        # No torn exposition: every sample line parses in isolation.
        for body in scraped["metrics"]:
            for line in body.splitlines():
                if line and not line.startswith("#"):
                    assert sample_re.match(line), f"torn line: {line!r}"
        # Every mid-flight /profile snapshot is a coherent document.
        for body in scraped["profiles"]:
            snap = json.loads(body)
            assert snap["enabled"] is True
            for prof in [snap["kernels"], *snap["queries"].values()]:
                for rec in prof.values():
                    assert set(rec) == {"calls", "cells", "seconds"}
                    assert rec["calls"] >= 1

        # The final aggregate attributes every query and never claims
        # more dp_cells than the registry counted for the same kernel
        # (driver-side kernel calls tick the counter only).
        assert len(final["queries"]) == 6
        assert final["kernels"]["ulam_sparse"]["cells"] > 0
        for kernel, rec in final["kernels"].items():
            needle = f'kernel="{kernel}"'
            counted = sum(
                float(line.rsplit(" ", 1)[1])
                for line in registry_text.splitlines()
                if line.startswith("repro_strings_dp_cells_total")
                and needle in line)
            if counted:
                assert rec["cells"] <= counted + 1e-9, kernel

    def test_unbound_exporter_serves_registry_only(self):
        with ObservabilityServer(port=0) as obs:
            code, text = _http_get(obs.url + "/metrics")
            assert code == 200
            code, body = _http_get(obs.url + "/healthz")
            assert code == 200  # absent service is sane, not broken
            assert json.loads(body)["admission"] == "unbound"
            code, _ = _http_get(obs.url + "/readyz")
            assert code == 503  # ...but not ready

    def test_prometheus_exposition_format(self):
        snapshot = {
            "lcs.dp_cells{kernel=hirschberg}":
                {"type": "counter", "value": 42},
            "config.cap": {"type": "gauge", "value": 7},
            "ulam.block{phase=1}": {"type": "histogram", "count": 3,
                                    "sum": 30, "min": 5, "max": 15},
        }
        text = prometheus_exposition(snapshot)
        lines = text.splitlines()
        assert 'repro_lcs_dp_cells_total{kernel="hirschberg"} 42' in lines
        assert "# TYPE repro_lcs_dp_cells_total counter" in lines
        assert "repro_config_cap 7" in lines
        assert 'repro_ulam_block_count{phase="1"} 3' in lines
        assert 'repro_ulam_block_sum{phase="1"} 30' in lines
        assert 'repro_ulam_block_min{phase="1"} 5' in lines
        assert 'repro_ulam_block_max{phase="1"} 15' in lines

    def test_render_health_flags_dead_executor(self):
        status = {"service": "svc1", "admission": "open", "inflight": 0,
                  "queued": 0, "corpora": 0, "active_segments": 0,
                  "executor": {"type": "serial", "alive": False,
                               "pool_running": False},
                  "queries": {"total": 0, "failed": 0, "by_engine": {}}}
        health = render_health(status)
        assert health["healthy"] is False
        assert health["checks"]["executor_alive"] is False


class TestSLOMonitor:
    def test_burn_rate_arithmetic(self):
        assert burn_rate(0, 100, 0.99) == 0.0
        assert burn_rate(1, 100, 0.99) == 1.0000000000000009 \
            or abs(burn_rate(1, 100, 0.99) - 1.0) < 1e-9
        assert burn_rate(10, 100, 0.99) > 9.9
        assert burn_rate(5, 0, 0.99) == 0.0
        assert burn_rate(1, 1, 1.0) == float("inf")

    def test_violation_dimensions_omit_unknowns(self):
        slo = SLO(engine="e", latency_p99_seconds=1.0, round_budget=2)
        full = QuerySample(engine="e", latency_seconds=0.5, rounds=2,
                           guarantees_passed=True)
        assert full.violations(slo) == {"latency": False,
                                        "rounds": False,
                                        "guarantees": False,
                                        "faults": False}
        sparse = QuerySample(engine="e")
        assert sparse.violations(slo) == {"faults": False}
        no_round_budget = SLO(engine="e", round_budget=None,
                              latency_p99_seconds=None)
        assert "rounds" not in full.violations(no_round_budget)
        assert "latency" not in full.violations(no_round_budget)

    def test_default_slos_take_round_budgets_from_engine_caps(self):
        slos = default_slos()
        assert slos["ulam-mpc"].round_budget == 2
        assert slos["edit-mpc"].round_budget == 4
        assert slos["exact-ulam"].round_budget is None

    def test_monitor_alerts_only_on_real_burn(self):
        monitor = SLOMonitor({"e": SLO(engine="e",
                                       latency_p99_seconds=1.0,
                                       round_budget=2)})
        for _ in range(10):
            monitor.observe(QuerySample(engine="e", latency_seconds=0.1,
                                        rounds=2,
                                        guarantees_passed=True))
        assert monitor.alerts() == []
        report = monitor.report("e")
        assert report.ok and report.worst_burn == 0.0
        monitor.observe(QuerySample(engine="e", latency_seconds=0.1,
                                    rounds=5, guarantees_passed=True,
                                    dropped_machines=2))
        alerts = monitor.alerts()
        assert any("rounds" in a for a in alerts)
        assert any("faults" in a for a in alerts)
        assert not monitor.report("e").ok

    def test_rolling_window_forgets_old_burn(self):
        monitor = SLOMonitor({"e": SLO(engine="e", round_budget=1,
                                       latency_p99_seconds=None)},
                             window=4)
        monitor.observe(QuerySample(engine="e", rounds=9))  # bad
        for _ in range(4):
            monitor.observe(QuerySample(engine="e", rounds=1))
        assert monitor.report("e").dimensions["rounds"]["bad"] == 0
        assert monitor.alerts() == []

    def test_sample_from_record_shapes(self):
        one_shot = {"engine": "ulam-mpc",
                    "summary": {"rounds": 2, "wall_seconds": 0.5,
                                "dropped_machines": 1,
                                "failed_attempts": 3},
                    "guarantees": {"passed": False}}
        sample = sample_from_record(one_shot)
        assert sample.engine == "ulam-mpc"
        assert sample.rounds == 2
        assert sample.latency_seconds == 0.5
        assert sample.guarantees_passed is False
        assert sample.dropped_machines == 1
        per_query_row = {"engine": "edit-mpc", "rounds": 4,
                         "latency_seconds": 0.25, "trace_id": "svc1-q2",
                         "query_id": 2, "guarantees_passed": True,
                         "dropped_machines": 0, "failed_attempts": 0}
        sample = sample_from_record(per_query_row)
        assert sample.latency_seconds == 0.25
        assert sample.trace_id == "svc1-q2"
        assert sample.guarantees_passed is True

    def test_live_outcomes_feed_the_monitor(self):
        outcomes, _ = run_workload(_mixed_queries(4),
                                   check_guarantees=True)
        monitor = SLOMonitor()
        for o in outcomes:
            monitor.observe_outcome(o)
        reports = {r.engine: r for r in monitor.reports()}
        assert set(reports) == {"ulam-mpc", "edit-mpc"}
        for report in reports.values():
            assert report.ok, report.to_dict()
            assert report.dimensions["guarantees"]["evaluated"] \
                == report.n_samples
        assert monitor.alerts() == []


class TestCompareLatencyRow:
    def test_latency_row_is_informational_only(self):
        from repro.registry import compare_records
        baseline = {"summary": {"total_work": 100, "distance": 5},
                    "latency_seconds": 0.2}
        fresh = {"summary": {"total_work": 100, "distance": 5},
                 "latency_seconds": 0.4}
        rows = compare_records(baseline, fresh)
        lat = rows["latency_seconds"]
        assert lat["baseline"] == 0.2 and lat["fresh"] == 0.4
        assert lat["change"] == 1.0
        assert lat["regressed"] is False  # 2x slower never gates

    def test_latency_row_falls_back_to_summary_p99(self):
        from repro.registry import compare_records
        baseline = {"summary": {"total_work": 1}}
        fresh = {"summary": {"total_work": 1,
                             "p99_latency_seconds": 0.7}}
        rows = compare_records(baseline, fresh)
        assert rows["latency_seconds"]["fresh"] == 0.7
        assert rows["latency_seconds"]["baseline"] is None
        assert rows["latency_seconds"]["regressed"] is False

    def test_absent_latency_emits_no_row(self):
        from repro.registry import compare_records
        rows = compare_records({"summary": {"total_work": 1}},
                               {"summary": {"total_work": 1}})
        assert "latency_seconds" not in rows
