"""Integration tests for the full 2-round MPC Ulam algorithm (Theorem 4)."""

import numpy as np
import pytest

from repro import UlamConfig, mpc_ulam
from repro.mpc import MPCSimulator, ProcessPoolExecutor
from repro.strings import ulam_distance
from repro.workloads.permutations import (block_shuffled_pair, planted_pair,
                                          random_permutation)

N = 128
X = 0.4
EPS = 0.5
CFG = UlamConfig.default()


class TestApproximationGuarantee:
    @pytest.mark.parametrize("style", ["moves", "swaps", "mixed"])
    @pytest.mark.parametrize("budget", [0, 2, 6, 16])
    def test_one_plus_eps_on_planted_pairs(self, style, budget):
        s, t, _ = planted_pair(N, budget, seed=budget * 7 + 1, style=style)
        res = mpc_ulam(s, t, x=X, eps=EPS, seed=1, config=CFG)
        exact = ulam_distance(s, t)
        assert exact <= res.distance <= (1 + EPS) * max(exact, 1)

    def test_identical_permutations(self):
        s = random_permutation(N, seed=5)
        res = mpc_ulam(s, s.copy(), x=X, eps=EPS, config=CFG)
        assert res.distance == 0

    def test_far_pair_block_shuffle(self):
        s, t = block_shuffled_pair(N, 8, seed=9)
        res = mpc_ulam(s, t, x=X, eps=EPS, seed=1, config=CFG)
        exact = ulam_distance(s, t)
        assert exact <= res.distance <= (1 + EPS) * max(exact, 1)

    def test_completely_unrelated_permutations(self):
        s = random_permutation(N, seed=1)
        t = random_permutation(N, seed=2)
        res = mpc_ulam(s, t, x=X, eps=EPS, seed=1, config=CFG)
        exact = ulam_distance(s, t)
        assert exact <= res.distance <= (1 + EPS) * max(exact, 1)

    def test_disjoint_symbol_sets(self):
        s = np.arange(N, dtype=np.int64)
        t = np.arange(N, dtype=np.int64) + N
        res = mpc_ulam(s, t, x=X, eps=EPS, config=CFG)
        assert res.distance == N  # substitute everything

    def test_different_lengths(self):
        s = random_permutation(N, seed=3)
        t = s[: N // 2]
        res = mpc_ulam(s, t, x=X, eps=EPS, config=CFG)
        exact = ulam_distance(s, t)
        assert exact <= res.distance <= (1 + EPS) * max(exact, 1)

    def test_seed_sweep_high_probability(self):
        """Theorem 4 is w.h.p. over the hitting-set coins: the guarantee
        must hold across many seeds, not for one lucky draw."""
        s, t, _ = planted_pair(N, 12, seed=42, style="mixed")
        exact = ulam_distance(s, t)
        for seed in range(8):
            res = mpc_ulam(s, t, x=X, eps=EPS, seed=seed, config=CFG)
            assert exact <= res.distance <= (1 + EPS) * max(exact, 1)


class TestResourceContract:
    def test_exactly_two_rounds(self):
        s, t, _ = planted_pair(N, 4, seed=1)
        res = mpc_ulam(s, t, x=X, eps=EPS, config=CFG)
        assert res.stats.n_rounds == 2
        names = [r.name for r in res.stats.rounds]
        assert names == ["ulam/1-candidates", "ulam/2-combine"]

    def test_machine_count_is_block_count_in_round_one(self):
        s, t, _ = planted_pair(N, 4, seed=1)
        res = mpc_ulam(s, t, x=X, eps=EPS, config=CFG)
        assert res.stats.rounds[0].machines == res.params.n_blocks

    def test_single_machine_in_round_two(self):
        s, t, _ = planted_pair(N, 4, seed=1)
        res = mpc_ulam(s, t, x=X, eps=EPS, config=CFG)
        assert res.stats.rounds[1].machines == 1

    def test_memory_cap_enforced_not_just_reported(self):
        s, t, _ = planted_pair(N, 4, seed=1)
        res = mpc_ulam(s, t, x=X, eps=EPS, config=CFG)
        assert res.stats.max_memory_words <= res.params.memory_limit

    def test_machines_scale_with_x(self):
        s, t, _ = planted_pair(256, 8, seed=1)
        lo = mpc_ulam(s, t, x=0.25, eps=EPS, config=CFG)
        hi = mpc_ulam(s, t, x=0.45, eps=EPS, config=CFG)
        assert hi.stats.max_machines > lo.stats.max_machines
        assert hi.params.block_size < lo.params.block_size

    def test_summary_contains_headline_fields(self):
        s, t, _ = planted_pair(N, 4, seed=1)
        summary = mpc_ulam(s, t, x=X, eps=EPS, config=CFG).summary()
        for key in ("distance", "rounds", "max_machines",
                    "max_memory_words", "total_work"):
            assert key in summary


class TestDeterminismAndExecutors:
    def test_same_seed_same_answer(self):
        s, t, _ = planted_pair(N, 10, seed=2, style="mixed")
        a = mpc_ulam(s, t, x=X, eps=EPS, seed=3, config=CFG)
        b = mpc_ulam(s, t, x=X, eps=EPS, seed=3, config=CFG)
        assert a.distance == b.distance
        assert a.n_tuples == b.n_tuples

    @pytest.mark.slow
    def test_process_pool_matches_serial(self):
        s, t, _ = planted_pair(N, 8, seed=4)
        serial = mpc_ulam(s, t, x=X, eps=EPS, seed=5, config=CFG)
        with ProcessPoolExecutor(max_workers=2) as pool:
            sim = MPCSimulator(
                memory_limit=serial.params.memory_limit, executor=pool)
            pooled = mpc_ulam(s, t, x=X, eps=EPS, seed=5, sim=sim,
                              config=CFG)
        assert pooled.distance == serial.distance
        assert pooled.stats.total_work == serial.stats.total_work


class TestInputValidation:
    def test_rejects_duplicate_characters(self):
        with pytest.raises(ValueError):
            mpc_ulam([1, 1, 2], [1, 2, 3], x=X)

    def test_rejects_bad_x(self):
        s, t, _ = planted_pair(64, 2, seed=1)
        with pytest.raises(ValueError):
            mpc_ulam(s, t, x=0.6)

    def test_keep_tuples_flag(self):
        s, t, _ = planted_pair(N, 2, seed=1)
        res = mpc_ulam(s, t, x=X, eps=EPS, config=CFG, keep_tuples=True)
        assert res.tuples is not None
        assert len(res.tuples) == res.n_tuples
        res2 = mpc_ulam(s, t, x=X, eps=EPS, config=CFG)
        assert res2.tuples is None


class TestConfigEffects:
    def test_practical_preset_still_accurate_on_planted(self):
        s, t, _ = planted_pair(N, 8, seed=6)
        res = mpc_ulam(s, t, x=X, eps=EPS, seed=1,
                       config=UlamConfig.practical())
        exact = ulam_distance(s, t)
        assert exact <= res.distance <= (1 + EPS) * max(exact, 1)

    def test_paper_preset_needs_more_communication(self):
        s, t, _ = planted_pair(N, 8, seed=6)
        sim = MPCSimulator(memory_limit=None)
        paper = mpc_ulam(s, t, x=X, eps=EPS, seed=1, sim=sim,
                         config=UlamConfig.paper())
        deflt = mpc_ulam(s, t, x=X, eps=EPS, seed=1, config=CFG)
        assert paper.n_tuples >= deflt.n_tuples
