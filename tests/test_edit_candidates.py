"""Unit tests for the edit-distance candidate geometry (Figs. 4–5)."""

import pytest

from repro.editdistance import candidate_windows, length_offsets, start_grid
from repro.params import EditParams


class TestStartGrid:
    def test_grid_points_divisible_by_gap(self):
        pts = start_grid(block_lo=50, distance_guess=20, gap=4, n_t=100)
        assert all(p % 4 == 0 for p in pts)

    def test_grid_covers_guess_radius(self):
        pts = start_grid(block_lo=50, distance_guess=20, gap=4, n_t=100)
        assert min(pts) >= 30 and max(pts) <= 70
        # the grid must reach within one gap of both interval ends
        assert min(pts) <= 30 + 4 and max(pts) >= 70 - 4

    def test_grid_density_guarantee(self):
        # Lemma 5 needs a start in [alpha, alpha + G] for any alpha in
        # the radius: consecutive grid points differ by exactly G
        pts = start_grid(40, 15, 3, 200)
        assert all(b - a == 3 for a, b in zip(pts, pts[1:]))

    def test_clipped_to_text(self):
        pts = start_grid(block_lo=2, distance_guess=50, gap=5, n_t=30)
        assert min(pts) >= 0 and max(pts) <= 30

    def test_gap_one_enumerates_everything(self):
        pts = start_grid(5, 2, 1, 10)
        assert pts == [3, 4, 5, 6, 7]

    def test_never_empty_within_text(self):
        assert start_grid(0, 0, 7, 100) != []


class TestLengthOffsets:
    def test_zero_always_included(self):
        assert 0 in length_offsets(100, 50, 0.25)

    def test_symmetric(self):
        offs = length_offsets(100, 50, 0.25)
        assert sorted(-o for o in offs) == offs

    def test_capped_by_guess(self):
        offs = length_offsets(1000, 5, 0.25)
        assert max(offs) <= 5

    def test_capped_by_length_budget(self):
        offs = length_offsets(10, 10 ** 6, 0.5)
        assert max(offs) <= 20  # B / eps' = 10 / 0.5

    def test_geometric_count(self):
        offs = length_offsets(1000, 10 ** 6, 0.25)
        assert len(offs) < 90


class TestCandidateWindows:
    def test_windows_well_formed(self):
        offs = length_offsets(8, 100, 0.5)
        wins = candidate_windows(10, 8, offs, 0.5, n_t=50)
        assert wins
        for st, en in wins:
            assert st == 10 and 10 <= en <= 50
            assert en - st <= 16  # B / eps'

    def test_base_length_present(self):
        wins = candidate_windows(10, 8, length_offsets(8, 100, 0.5), 0.5, 50)
        assert (10, 18) in wins

    def test_clipped_at_text_end(self):
        wins = candidate_windows(48, 8, length_offsets(8, 100, 0.5), 0.5, 50)
        assert all(en <= 50 for _, en in wins)

    def test_no_duplicate_windows(self):
        wins = candidate_windows(45, 8, length_offsets(8, 100, 0.5), 0.5, 50)
        assert len(wins) == len(set(wins))

    def test_length_coverage_for_lemma5(self):
        # any plausible window length L (|L - B| <= d) must be within a
        # (1+eps') factor of some candidate length
        B, eps_p, guess, n_t = 32, 0.25, 16, 10 ** 4
        offs = length_offsets(B, guess, eps_p)
        wins = candidate_windows(100, B, offs, eps_p, n_t)
        lengths = sorted(en - st for st, en in wins)
        # interior of the feasible range; the extreme |L-B| = guess case
        # is absorbed by Lemma 5's ±ε'·ed slack
        radius = int(guess / (1 + eps_p))
        for L in range(B - radius, B + radius + 1):
            # nearest candidate length not longer than L
            below = [c for c in lengths if c <= L]
            assert below, L
            gap = L - max(below)
            allowed = eps_p * max(abs(L - B), 1) + 1
            assert gap <= allowed, (L, max(below))


class TestRegimeBoundaryInteraction:
    def test_small_regime_candidates_fit_machine_memory(self):
        p = EditParams(n=4096, x=0.25, eps=1.0, eps_prime_divisor=4)
        B = p.block_size_small
        assert int(B / p.eps_prime) < p.memory_limit
