"""Unit tests for fault plans and the fault-injecting executor."""

import pytest

from repro.mpc import (CorruptedOutput, FailedOutput, FaultDecision,
                       FaultInjectingExecutor, FaultPlan, MachineTask,
                       ProcessPoolExecutor, SerialExecutor, add_work,
                       is_failed)


def _work10(payload):
    add_work(10)
    return payload * 2


def _boom(payload):
    raise ValueError("genuine machine bug")


class TestFaultPlanSpec:
    def test_parse_full_spec(self):
        plan = FaultPlan.from_spec("crash=0.05,straggle=0.1x4,corrupt=0.01",
                                   seed=3)
        assert plan.crash == 0.05
        assert plan.straggle == 0.1
        assert plan.straggle_factor == 4.0
        assert plan.corrupt == 0.01
        assert plan.seed == 3

    def test_parse_straggle_without_factor_keeps_default(self):
        plan = FaultPlan.from_spec("straggle=0.2")
        assert plan.straggle == 0.2
        assert plan.straggle_factor == 4.0

    def test_seed_term_overrides_argument(self):
        assert FaultPlan.from_spec("crash=0.1,seed=9", seed=1).seed == 9

    def test_empty_spec_is_no_faults(self):
        plan = FaultPlan.from_spec("")
        assert plan.expected_failure_rate() == 0.0

    def test_to_spec_round_trips(self):
        plan = FaultPlan.from_spec("crash=0.3,straggle=0.2x8,corrupt=0.1",
                                   seed=42)
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    @pytest.mark.parametrize("bad", ["crash", "explode=0.5", "crash=2.0",
                                     "straggle=0.5x0.5"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(bad)


class TestFaultPlanDecide:
    def test_deterministic_per_key(self):
        plan = FaultPlan(crash=0.3, straggle=0.3, corrupt=0.3, seed=5)
        for attempt in (1, 2, 3):
            a = plan.decide("round", 7, attempt)
            b = plan.decide("round", 7, attempt)
            assert a == b

    def test_varies_across_machines_and_attempts(self):
        plan = FaultPlan(crash=0.5, seed=5)
        fates = {(i, a): plan.decide("r", i, a).crash
                 for i in range(50) for a in (1, 2)}
        assert any(fates.values()) and not all(fates.values())

    def test_different_seeds_differ(self):
        crashes_a = [FaultPlan(crash=0.5, seed=1).decide("r", i).crash
                     for i in range(64)]
        crashes_b = [FaultPlan(crash=0.5, seed=2).decide("r", i).crash
                     for i in range(64)]
        assert crashes_a != crashes_b

    def test_empirical_rate_matches_probability(self):
        plan = FaultPlan(crash=0.25, seed=0)
        hits = sum(plan.decide("r", i).crash for i in range(2000))
        assert 0.20 < hits / 2000 < 0.30

    def test_zero_plan_is_clean_fast_path(self):
        d = FaultPlan().decide("r", 0)
        assert d.clean and d == FaultDecision()

    def test_crash_preempts_corrupt(self):
        plan = FaultPlan(crash=1.0, corrupt=1.0, seed=0)
        d = plan.decide("r", 0)
        assert d.crash and not d.corrupt

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(straggle_factor=0.5)


class TestFaultInjectingExecutor:
    def _run(self, plan, fn=_work10, n=8, attempt=1, inner=None,
             realtime=False):
        ex = FaultInjectingExecutor(inner=inner, plan=plan,
                                    realtime=realtime)
        ex.set_round("r")
        tasks = [MachineTask(fn=fn, payload=i) for i in range(n)]
        return ex.run_attempt(tasks, range(n), attempt)

    def test_no_plan_passthrough(self):
        results = self._run(FaultPlan())
        assert [r.output for r in results] == [i * 2 for i in range(8)]
        assert all(r.work == 10 for r in results)

    def test_crash_becomes_failed_output(self):
        results = self._run(FaultPlan(crash=1.0, seed=0))
        for i, r in enumerate(results):
            assert isinstance(r.output, FailedOutput)
            assert r.output.kind == "crash"
            assert r.output.machine_index == i
            assert is_failed(r.output)
        # the crashed attempt still burned its work
        assert all(r.work == 10 for r in results)

    def test_corrupt_becomes_sentinel(self):
        results = self._run(FaultPlan(corrupt=1.0, seed=0))
        for r in results:
            assert isinstance(r.output, CorruptedOutput)
            assert is_failed(r.output)

    def test_straggle_inflates_work_and_wall(self):
        clean = self._run(FaultPlan())
        slow = self._run(FaultPlan(straggle=1.0, straggle_factor=8.0,
                                   seed=0))
        assert sum(r.work for r in slow) > sum(r.work for r in clean)
        assert all(r.work >= 10 for r in slow)

    def test_machine_exception_captured_not_propagated(self):
        results = self._run(FaultPlan(), fn=_boom, n=2)
        for r in results:
            assert isinstance(r.output, FailedOutput)
            assert r.output.kind == "error"
            assert "ValueError" in r.output.message

    def test_plain_run_protocol_is_attempt_one(self):
        plan = FaultPlan(crash=0.5, seed=1)
        ex = FaultInjectingExecutor(plan=plan)
        ex.set_round("r")
        tasks = [MachineTask(fn=_work10, payload=i) for i in range(16)]
        via_run = [is_failed(r.output) for r in ex.run(tasks)]
        via_attempt = [is_failed(r.output)
                       for r in ex.run_attempt(tasks, range(16), 1)]
        assert via_run == via_attempt

    def test_pool_and_serial_inject_identically(self):
        plan = FaultPlan(crash=0.4, corrupt=0.2, seed=9)
        serial = self._run(plan, n=12)
        with ProcessPoolExecutor(max_workers=2) as pool:
            pooled = self._run(plan, n=12, inner=pool)
        assert ([is_failed(r.output) for r in serial]
                == [is_failed(r.output) for r in pooled])
        assert ([type(r.output).__name__ for r in serial]
                == [type(r.output).__name__ for r in pooled])

    def test_misaligned_indices_rejected(self):
        ex = FaultInjectingExecutor(plan=FaultPlan())
        with pytest.raises(ValueError):
            ex.run_attempt([MachineTask(fn=_work10, payload=1)], [0, 1], 1)
