"""Tests for the LIS and approximate-search extensions."""

import numpy as np
import pytest

from repro.extensions import (approximate_search, combine_lis_tables,
                              mpc_approximate_search, mpc_lis)
from repro.strings import levenshtein, lis_length
from repro.workloads.permutations import apply_moves, random_permutation


class TestMpcLis:
    def test_lower_bound_everywhere(self, rng):
        for seed in range(5):
            seq = random_permutation(200, seed=seed)
            res = mpc_lis(seq, x=0.3, eps=0.25)
            assert res.lis <= lis_length(seq)

    def test_additive_error_bound(self):
        n = 256
        for label, seq in {
            "sorted": np.arange(n),
            "near-sorted": apply_moves(np.arange(n), 16, seed=1),
            "random": random_permutation(n, seed=2),
        }.items():
            res = mpc_lis(seq, x=0.3, eps=0.25)
            exact = lis_length(seq)
            assert res.lis >= exact - 2 * 0.25 * n, label

    def test_reversed_sequence_exact(self):
        # LIS = 1: no quantisation loss possible
        seq = np.arange(100)[::-1].copy()
        assert mpc_lis(seq, x=0.3, eps=0.25).lis == 1

    def test_sorted_sequence_near_n(self):
        res = mpc_lis(np.arange(300), x=0.3, eps=0.1)
        assert res.lis >= 300 * (1 - 2 * 0.1)

    def test_two_rounds(self):
        res = mpc_lis(random_permutation(128, seed=3), x=0.3, eps=0.25)
        assert res.stats.n_rounds == 2

    def test_empty(self):
        assert mpc_lis(np.array([], dtype=np.int64)).lis == 0

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            mpc_lis([1, 1, 2])

    def test_validation(self):
        with pytest.raises(ValueError):
            mpc_lis([1, 2], x=1.5)
        with pytest.raises(ValueError):
            mpc_lis([1, 2], eps=0)

    def test_smaller_eps_tightens(self):
        seq = apply_moves(np.arange(256), 20, seed=4)
        coarse = mpc_lis(seq, x=0.3, eps=0.5)
        fine = mpc_lis(seq, x=0.3, eps=0.1)
        assert fine.lis >= coarse.lis

    def test_combine_tables_single_block_identity(self):
        # one block, K=2: the combine must read off the best full-range
        table = np.array([[3, 5], [0, 2]], dtype=np.int64).reshape(-1)
        assert combine_lis_tables([table], K=2) == 5


class TestApproximateSearch:
    def test_exact_occurrences_found(self):
        text = [1, 2, 3, 4, 1, 2, 3, 5]
        hits = approximate_search([1, 2, 3], text, k=0)
        spans = {(m.start, m.end) for m in hits}
        assert (0, 3) in spans and (4, 7) in spans
        assert all(m.distance == 0 for m in hits)

    def test_reported_distances_are_true(self, rng):
        for _ in range(40):
            t = rng.integers(0, 4, 40).tolist()
            p = rng.integers(0, 4, 5).tolist()
            for m in approximate_search(p, t, k=2):
                assert levenshtein(p, t[m.start:m.end]) == m.distance
                assert m.distance <= 2

    def test_no_matches_beyond_k(self):
        hits = approximate_search([9, 9, 9], [1, 2, 3, 4], k=1)
        assert hits == []

    def test_no_false_negatives_in_quality(self, rng):
        """Completeness contract: if any window lies within distance d
        (d ≤ k), a match with distance ≤ d is reported — valleys collapse
        positions, never quality."""
        for _ in range(20):
            t = rng.integers(0, 3, 30).tolist()
            p = rng.integers(0, 3, 4).tolist()
            k = 1
            hits = approximate_search(p, t, k)
            best_hit = min((m.distance for m in hits), default=k + 1)
            best_true = min(
                (levenshtein(p, t[g:h])
                 for g in range(len(t) + 1)
                 for h in range(g, len(t) + 1)), default=k + 1)
            if best_true <= k:
                assert best_hit == best_true, (p, t)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            approximate_search([1], [1], k=-1)

    def test_empty_pattern(self):
        assert approximate_search([], [1, 2], k=0) == \
            approximate_search([], [1, 2], k=3)


class TestMpcApproximateSearch:
    def test_matches_sequential_exactly(self, rng):
        for trial in range(20):
            t = rng.integers(0, 4, 80).tolist()
            p = rng.integers(0, 4, 6).tolist()
            seq = {(m.start, m.end, m.distance)
                   for m in approximate_search(p, t, 2)}
            for shard in (11, 23, 80):
                mpc = {(m.start, m.end, m.distance)
                       for m in mpc_approximate_search(
                           p, t, 2, shard_size=shard).matches}
                assert mpc == seq, (trial, shard)

    def test_single_round(self):
        res = mpc_approximate_search([1, 2], list(range(50)), k=1,
                                     shard_size=10)
        assert res.stats.n_rounds == 1
        assert res.stats.max_machines == 5

    def test_memory_capped_shards(self):
        res = mpc_approximate_search([1, 2, 3], list(range(200)) * 2,
                                     k=1, shard_size=40)
        assert res.stats.max_memory_words <= 8 * (40 + 2 * 4 + 3) + 64
