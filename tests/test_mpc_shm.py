"""Unit and lifecycle tests for the zero-copy data plane.

The data plane's contract has three legs:

* **equivalence** — descriptors resolve to exactly the array slices they
  replaced, in-process (views) and across processes (attach);
* **accounting** — ``__mpc_size__`` of a descriptor equals ``sizeof`` of
  the replaced slice, so every ledger is byte-identical with the plane
  on or off, while the *physical* pickle bytes shrink;
* **lifecycle** — no shared-memory segment survives a run under any
  executor or exit path (clean, chaos retries, mid-round failure).
"""

import pickle

import numpy as np
import pytest

from repro import mpc_edit_distance, mpc_ulam
from repro.mpc import (DataPlane, FaultPlan, MemoryLimitExceeded,
                       MPCSimulator, ProcessPoolExecutor,
                       ResilientSimulator, RetryPolicy, SerialExecutor,
                       SharedSlice, active_segments, payload_byte_stats,
                       resolve_payload, sizeof)
from repro.mpc import shm as shm_mod
from repro.mpc.telemetry import InMemorySink, Tracer
from repro.workloads.permutations import planted_pair as perm_pair
from repro.workloads.strings import planted_pair as str_pair


class TestSharedSlice:
    def test_sizeof_matches_replaced_ndarray(self):
        arr = np.arange(37, dtype=np.int64)
        ref = SharedSlice("seg", "int64", 3, 20)
        assert sizeof(ref) == sizeof(arr[3:23])
        assert sizeof(SharedSlice("seg", "int64", 0, 0)) == sizeof(arr[:0])

    def test_len_and_nbytes(self):
        ref = SharedSlice("seg", "int64", 4, 9)
        assert len(ref) == 9
        assert ref.nbytes == 9 * 8

    def test_pickles_small_regardless_of_length(self):
        tiny = SharedSlice("seg", "int64", 0, 10)
        huge = SharedSlice("seg", "int64", 0, 10 ** 9)
        # O(descriptor) bytes: a billion-element slice costs the same few
        # bytes as a ten-element one (modulo the integer's own width).
        assert len(pickle.dumps(huge)) < len(pickle.dumps(tiny)) + 8
        assert len(pickle.dumps(huge)) < 160


class TestPublishResolve:
    def test_roundtrip_and_zero_copy(self):
        arr = np.arange(100, dtype=np.int64)
        with DataPlane() as plane:
            plane.publish("a", arr)
            ref = plane.slice("a", 10, 40)
            view = resolve_payload(ref)
            np.testing.assert_array_equal(view, arr[10:40])
            # local resolution aliases the published copy — no per-task copy
            assert np.shares_memory(view, resolve_payload(
                plane.slice("a", 0, 100)))
        assert active_segments() == frozenset()

    def test_resolution_through_worker_attach_path(self):
        arr = np.arange(64, dtype=np.int64)
        with DataPlane() as plane:
            full = plane.publish("a", arr)
            # Simulate a worker that pre-dates the publish: it has no
            # local-array entry and must attach the segment.
            local = shm_mod._local_arrays.pop(full.segment)
            try:
                view = resolve_payload(plane.slice("a", 5, 25))
                np.testing.assert_array_equal(view, arr[5:25])
            finally:
                shm_mod._local_arrays[full.segment] = local
                shm_mod.detach_segments()
        assert active_segments() == frozenset()

    def test_attach_cache_is_bounded_lru(self):
        planes = [DataPlane() for _ in range(shm_mod._ATTACH_CACHE_LIMIT + 3)]
        try:
            for i, plane in enumerate(planes):
                full = plane.publish("a", np.arange(8, dtype=np.int64) + i)
                shm_mod._local_arrays.pop(full.segment)
                resolve_payload(plane.slice("a", 0, 8))
            assert len(shm_mod._attach_cache) \
                <= shm_mod._ATTACH_CACHE_LIMIT
        finally:
            shm_mod.detach_segments()
            for plane in planes:
                plane.close()
        assert active_segments() == frozenset()

    def test_resolve_payload_walks_containers(self):
        arr = np.arange(30, dtype=np.int64)
        with DataPlane() as plane:
            plane.publish("a", arr)
            payload = {"items": [(0, plane.slice("a", 0, 5)),
                                 (1, plane.slice("a", 5, 10))],
                       "plain": 7}
            out = resolve_payload(payload)
            np.testing.assert_array_equal(out["items"][0][1], arr[0:5])
            np.testing.assert_array_equal(out["items"][1][1], arr[5:10])
            assert out["plain"] == 7

    def test_resolve_payload_preserves_identity_without_descriptors(self):
        payload = {"a": [1, 2, (3, 4)], "b": np.arange(3)}
        assert resolve_payload(payload) is payload

    def test_slice_bounds_checked(self):
        with DataPlane() as plane:
            plane.publish("a", np.arange(10, dtype=np.int64))
            with pytest.raises(ValueError):
                plane.slice("a", 3, 11)
            with pytest.raises(ValueError):
                plane.slice("a", -1, 5)
            with pytest.raises(KeyError):
                plane.slice("missing", 0, 1)

    def test_publish_rejects_duplicates_and_2d(self):
        with DataPlane() as plane:
            plane.publish("a", np.arange(4))
            with pytest.raises(ValueError):
                plane.publish("a", np.arange(4))
            with pytest.raises(ValueError):
                plane.publish("b", np.zeros((2, 2)))

    def test_closed_plane_rejects_publish(self):
        plane = DataPlane()
        plane.close()
        plane.close()  # idempotent
        with pytest.raises(ValueError):
            plane.publish("a", np.arange(3))


class TestByteAccounting:
    def test_descriptor_payloads_ship_fewer_bytes(self):
        arr = np.arange(4096, dtype=np.int64)
        with DataPlane() as plane:
            plane.publish("a", arr)
            copies = [{"block": arr[lo:lo + 512]}
                      for lo in range(0, 4096, 512)]
            descs = [{"block": plane.slice("a", lo, lo + 512)}
                     for lo in range(0, 4096, 512)]
            shipped_c, avoided_c = payload_byte_stats(copies)
            shipped_d, avoided_d = payload_byte_stats(descs)
        assert avoided_c == 0
        assert avoided_d == 4096 * 8
        assert shipped_d * 2 < shipped_c

    def test_publish_emits_span(self):
        sink = InMemorySink()
        with DataPlane(tracer=Tracer([sink])) as plane:
            plane.publish("a", np.arange(17, dtype=np.int64))
        spans = [s for s in sink.spans if s.kind == "publish"]
        assert len(spans) == 1
        assert spans[0].name == "data-plane/a"
        assert spans[0].output_words == 17


class TestRefcounting:
    def test_release_of_last_reference_unlinks(self):
        plane = DataPlane()
        plane.publish("a", np.arange(5))
        assert len(active_segments()) == 1
        plane.retain("a")
        plane.release("a")
        assert len(active_segments()) == 1  # publish ref still held
        plane.release("a")
        assert active_segments() == frozenset()
        plane.close()

    def test_close_force_unlinks_leaked_retains(self):
        plane = DataPlane()
        plane.publish("a", np.arange(5))
        plane.retain("a")
        plane.close()
        assert active_segments() == frozenset()


def _summary(res):
    out = res.stats.summary()
    out.pop("wall_seconds", None)
    return out


class TestDriverLifecycle:
    """No segment survives a run — any driver, any executor, any exit."""

    def test_ulam_serial_and_pool_agree_and_leak_nothing(self):
        s, t, _ = perm_pair(256, 16, seed=0, style="mixed")
        serial = mpc_ulam(s, t, seed=0)
        assert active_segments() == frozenset()
        with ProcessPoolExecutor(max_workers=2) as pool:
            sim = MPCSimulator(
                memory_limit=serial.params.memory_limit, executor=pool)
            pooled = mpc_ulam(s, t, seed=0, sim=sim)
        assert active_segments() == frozenset()
        assert pooled.distance == serial.distance
        assert _summary(pooled) == _summary(serial)

    def test_edit_pool_matches_serial_and_leaks_nothing(self):
        s, t, _ = str_pair(128, 8, sigma=4, seed=0)
        serial = mpc_edit_distance(s, t, seed=0)
        with ProcessPoolExecutor(max_workers=2) as pool:
            sim = MPCSimulator(
                memory_limit=serial.params.memory_limit, executor=pool)
            pooled = mpc_edit_distance(s, t, seed=0, sim=sim)
        assert active_segments() == frozenset()
        assert pooled.distance == serial.distance
        assert _summary(pooled) == _summary(serial)

    def test_chaos_retry_waves_leak_nothing(self):
        s, t, _ = perm_pair(256, 16, seed=1, style="mixed")
        from repro.params import UlamParams
        sim = ResilientSimulator(
            memory_limit=UlamParams(n=256, x=0.4, eps=0.5).memory_limit,
            fault_plan=FaultPlan.from_spec("crash=0.2,straggle=0.1x2",
                                           seed=11),
            retry_policy=RetryPolicy(max_attempts=3))
        res = mpc_ulam(s, t, x=0.4, eps=0.5, seed=0, sim=sim)
        assert res.stats.retried_machines > 0
        assert active_segments() == frozenset()

    def test_chaos_under_pool_leaks_nothing(self):
        s, t, _ = perm_pair(256, 16, seed=1, style="mixed")
        from repro.params import UlamParams
        with ProcessPoolExecutor(max_workers=2) as pool:
            sim = ResilientSimulator(
                memory_limit=UlamParams(n=256, x=0.4,
                                        eps=0.5).memory_limit,
                fault_plan=FaultPlan.from_spec("crash=0.2", seed=11),
                retry_policy=RetryPolicy(max_attempts=3),
                executor=pool)
            clean = mpc_ulam(s, t, x=0.4, eps=0.5, seed=0)
            res = mpc_ulam(s, t, x=0.4, eps=0.5, seed=0, sim=sim)
        assert active_segments() == frozenset()
        assert res.distance == clean.distance

    def test_mid_round_failure_still_unlinks(self):
        # A memory-cap violation aborts the run mid-round; the driver's
        # finally must unlink every segment on that path too.
        s, t, _ = perm_pair(256, 16, seed=0, style="mixed")
        sim = MPCSimulator(memory_limit=8)  # far below any payload
        with pytest.raises(MemoryLimitExceeded):
            mpc_ulam(s, t, seed=0, sim=sim)
        assert active_segments() == frozenset()

    def test_serial_executor_passthrough(self):
        # Explicit SerialExecutor (not just the default) resolves locally.
        s, t, _ = perm_pair(256, 16, seed=0, style="mixed")
        sim = MPCSimulator(memory_limit=None, executor=SerialExecutor())
        res = mpc_ulam(s, t, seed=0, sim=sim)
        assert res.distance == mpc_ulam(s, t, seed=0).distance
        assert active_segments() == frozenset()


class TestRoundByteMetrics:
    def test_round_records_bytes_when_metrics_enabled(self):
        from repro.metrics import enabled
        s, t, _ = perm_pair(256, 16, seed=0, style="mixed")
        with enabled():
            on = mpc_ulam(s, t, seed=0, data_plane=True)
            off = mpc_ulam(s, t, seed=0, data_plane=False)
        assert on.stats.payload_bytes_avoided > 0
        assert off.stats.payload_bytes_avoided == 0
        assert 0 < on.stats.payload_bytes < off.stats.payload_bytes
        assert on.stats.summary()["data_plane_bytes_shipped"] \
            == on.stats.payload_bytes
        # Ledger fields stay identical; only the physical-byte report moves.
        keep = ("total_work", "total_communication_words",
                "max_memory_words", "rounds")
        for key in keep:
            assert on.stats.summary()[key] == off.stats.summary()[key]

    def test_bytes_not_recorded_when_metrics_disabled(self):
        s, t, _ = perm_pair(256, 16, seed=0, style="mixed")
        res = mpc_ulam(s, t, seed=0, data_plane=True)
        assert res.stats.payload_bytes == 0
        assert "data_plane_bytes_shipped" not in res.stats.summary()
