"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test RNG."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(autouse=True)
def _metrics_isolation():
    """Keep the process-wide metrics registry isolated between tests.

    CLI commands enable collection globally; without this fixture a test
    running after a CLI test would silently observe (and accumulate
    into) another test's counters.
    """
    from repro.metrics import get_registry
    from repro.obs import profile
    reg = get_registry()
    was_enabled = reg.enabled
    profiling_was_on = profile.profiling_enabled()
    yield
    if was_enabled:
        reg.enable()
    else:
        reg.disable()
    reg.reset()
    # The kernel profiler follows the same discipline: CLI commands
    # enable it process-wide, so restore and clear its global aggregate.
    if profiling_was_on:
        profile.enable()
    else:
        profile.disable()
    profile.reset_global_profile()


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration test (still in the "
        "default run; deselect with -m 'not slow')")
