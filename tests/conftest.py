"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test RNG."""
    return np.random.default_rng(0xC0FFEE)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration test (still in the "
        "default run; deselect with -m 'not slow')")
