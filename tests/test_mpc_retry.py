"""Unit tests for RetryPolicy and ResilientSimulator."""

import pytest

from repro.mpc import (FaultPlan, MemoryLimitExceeded, MPCSimulator,
                       ProcessPoolExecutor, ResilientSimulator,
                       RetryPolicy, RoundFailedError, RoundProtocolError,
                       WorkMeter, add_work)


def _work10(payload):
    add_work(10)
    return payload * 2


def _big(payload):
    return list(range(100))


def _ledger_key(stats):
    """The deterministic part of a ledger (everything but wall clocks)."""
    return [(r.name, r.machines, r.attempts, r.retried_machines,
             r.dropped_machines, r.wasted_work, r.total_work,
             r.max_work, r.total_input_words, r.total_output_words)
            for r in stats.rounds]


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)

    def test_zero_base_never_sleeps(self):
        p = RetryPolicy(backoff_base=0.0)
        assert p.delay("r", 2) == 0.0

    def test_delay_deterministic_and_exponential(self):
        p = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, jitter=0.1)
        d2, d3 = p.delay("r", 2), p.delay("r", 3)
        assert d2 == p.delay("r", 2)
        assert 0.1 <= d2 <= 0.1 * 1.1
        assert 0.2 <= d3 <= 0.2 * 1.1


class TestZeroOverheadPath:
    def test_no_plan_matches_base_simulator(self):
        base = MPCSimulator(memory_limit=1000)
        resil = ResilientSimulator(memory_limit=1000)
        a = base.run_round("r", _work10, [1, 2, 3])
        b = resil.run_round("r", _work10, [1, 2, 3])
        assert a == b
        assert _ledger_key(base.stats) == _ledger_key(resil.stats)

    def test_no_plan_summary_has_no_recovery_block(self):
        sim = ResilientSimulator()
        sim.run_round("r", _work10, [1])
        assert not sim.stats.recovery_active
        assert "retried_machines" not in sim.stats.summary()


class TestRecovery:
    def test_retries_until_success(self):
        plan = FaultPlan(crash=0.3, seed=2)
        sim = ResilientSimulator(fault_plan=plan,
                                 retry_policy=RetryPolicy(max_attempts=10))
        outs = sim.run_round("r", _work10, list(range(30)))
        assert outs == [i * 2 for i in range(30)]
        r = sim.stats.rounds[0]
        assert r.machines == 30
        assert r.attempts > 1
        assert r.retried_machines > 0
        assert r.wasted_work > 0
        assert r.dropped_machines == 0

    def test_corruption_is_retried(self):
        plan = FaultPlan(corrupt=0.4, seed=3)
        sim = ResilientSimulator(fault_plan=plan,
                                 retry_policy=RetryPolicy(max_attempts=10))
        outs = sim.run_round("r", _work10, list(range(20)))
        assert outs == [i * 2 for i in range(20)]
        assert sim.stats.rounds[0].retried_machines > 0

    def test_raise_on_exhausted_names_round_and_machines(self):
        plan = FaultPlan(crash=1.0, seed=1)
        sim = ResilientSimulator(fault_plan=plan,
                                 retry_policy=RetryPolicy(max_attempts=2))
        with pytest.raises(RoundFailedError) as exc:
            sim.run_round("doomed", _work10, [1, 2, 3])
        assert exc.value.round_name == "doomed"
        assert exc.value.failed_machines == [0, 1, 2]
        assert exc.value.attempts == 2

    def test_drop_leaves_aligned_placeholders(self):
        plan = FaultPlan(crash=0.5, seed=4)
        sim = ResilientSimulator(fault_plan=plan,
                                 retry_policy=RetryPolicy(max_attempts=1),
                                 on_exhausted="drop")
        outs = sim.run_round("r", _work10, list(range(40)))
        r = sim.stats.rounds[0]
        assert r.dropped_machines > 0
        # one entry per payload: dropped machines leave None at their own
        # position, so positional consumers never see shifted outputs.
        assert len(outs) == 40
        for i, out in enumerate(outs):
            assert out is None or out == i * 2
        assert sum(out is None for out in outs) == r.dropped_machines

    def test_all_machines_dropped_raises_even_in_drop_mode(self):
        plan = FaultPlan(crash=1.0, seed=1)
        sim = ResilientSimulator(fault_plan=plan,
                                 retry_policy=RetryPolicy(max_attempts=2),
                                 on_exhausted="drop")
        with pytest.raises(RoundFailedError) as exc:
            sim.run_round("r", _work10, [1, 2, 3])
        assert exc.value.failed_machines == [0, 1, 2]

    def test_single_machine_round_dropped_raises(self):
        # Combine-style rounds index run_round(...)[0]; a dropped lone
        # machine must surface as RoundFailedError, never as an empty or
        # all-None output list.
        plan = FaultPlan(crash=1.0, seed=5)
        sim = ResilientSimulator(fault_plan=plan,
                                 retry_policy=RetryPolicy(max_attempts=2),
                                 on_exhausted="drop")
        with pytest.raises(RoundFailedError):
            sim.run_round("combine", _work10, [7])

    def test_retry_budget_caps_re_executions(self):
        plan = FaultPlan(crash=0.5, seed=4)
        sim = ResilientSimulator(
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=10, retry_budget=2),
            on_exhausted="drop")
        outs = sim.run_round("r", _work10, list(range(40)))
        # with ~20 failures per wave the budget (2) does not even cover
        # one full retry wave, so the round ends after attempt 1 with the
        # still-failing (but not all) machines dropped.
        r = sim.stats.rounds[0]
        assert r.attempts == 1
        assert 0 < r.dropped_machines < 40
        assert sum(out is None for out in outs) == r.dropped_machines

    def test_wasted_work_charged_to_enclosing_meter(self):
        plan = FaultPlan(crash=0.5, seed=6)
        sim = ResilientSimulator(fault_plan=plan,
                                 retry_policy=RetryPolicy(max_attempts=10))
        with WorkMeter() as m:
            sim.run_round("r", _work10, list(range(10)))
        r = sim.stats.rounds[0]
        assert m.total == r.total_work + r.wasted_work

    def test_memory_limits_still_enforced_under_chaos(self):
        plan = FaultPlan(crash=0.2, seed=0)
        sim = ResilientSimulator(memory_limit=10, fault_plan=plan,
                                 retry_policy=RetryPolicy(max_attempts=5))
        with pytest.raises(MemoryLimitExceeded):
            sim.run_round("r", _big, [1])

    def test_empty_round_protocol_preserved(self):
        sim = ResilientSimulator(fault_plan=FaultPlan(crash=0.1))
        with pytest.raises(RoundProtocolError):
            sim.run_round("r", _work10, [])
        assert sim.run_round("r", _work10, [], allow_empty=True) == []


class TestDeterminism:
    def _run(self, executor=None):
        plan = FaultPlan.from_spec("crash=0.15,straggle=0.2x4,corrupt=0.05",
                                   seed=42)
        sim = ResilientSimulator(executor=executor, fault_plan=plan,
                                 retry_policy=RetryPolicy(max_attempts=8))
        sim.run_round("r1", _work10, list(range(20)))
        sim.run_round("r2", _work10, list(range(10)))
        return sim.stats

    def test_same_seed_same_ledger(self):
        assert _ledger_key(self._run()) == _ledger_key(self._run())

    def test_pool_ledger_matches_serial(self):
        serial = self._run()
        with ProcessPoolExecutor(max_workers=2) as pool:
            pooled = self._run(executor=pool)
        assert _ledger_key(serial) == _ledger_key(pooled)

    def test_different_seed_different_failures(self):
        a = self._run()
        plan_b = FaultPlan.from_spec("crash=0.15,straggle=0.2x4,corrupt=0.05",
                                     seed=43)
        sim = ResilientSimulator(fault_plan=plan_b,
                                 retry_policy=RetryPolicy(max_attempts=8))
        sim.run_round("r1", _work10, list(range(20)))
        sim.run_round("r2", _work10, list(range(10)))
        assert _ledger_key(a) != _ledger_key(sim.stats)


class TestSpawnAbsorb:
    def test_spawn_propagates_plan_and_policy(self):
        plan = FaultPlan(crash=0.3, seed=1)
        policy = RetryPolicy(max_attempts=7)
        sim = ResilientSimulator(memory_limit=5000, fault_plan=plan,
                                 retry_policy=policy,
                                 on_exhausted="drop", realtime=False)
        sub = sim.spawn()
        assert isinstance(sub, ResilientSimulator)
        assert sub.fault_plan == plan
        assert sub.retry_policy == policy
        assert sub.on_exhausted == "drop"
        assert sub.memory_limit == 5000

    def test_absorb_folds_recovery_counters(self):
        plan = FaultPlan(crash=0.3, seed=2)
        sim = ResilientSimulator(fault_plan=plan,
                                 retry_policy=RetryPolicy(max_attempts=10))
        sub = sim.spawn()
        sub.run_round("r", _work10, list(range(30)))
        wasted = sub.stats.wasted_work
        retried = sub.stats.retried_machines
        assert retried > 0
        sim.absorb(sub)
        assert sim.stats.wasted_work == wasted
        assert sim.stats.retried_machines == retried

    def test_invalid_on_exhausted_rejected(self):
        with pytest.raises(ValueError):
            ResilientSimulator(on_exhausted="explode")
