"""Property-based tests for the MPC substrate and combining DPs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.editdistance import combine_edit_tuples
from repro.mpc import blocks, pack_by_weight, sizeof
from repro.ulam import combine_tuples

payload = st.recursive(
    st.one_of(st.integers(-100, 100), st.floats(allow_nan=False,
                                                allow_infinity=False),
              st.text(max_size=6), st.none()),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=3), children, max_size=3)),
    max_leaves=12)


class TestSizeofProperties:
    @given(obj=payload)
    @settings(max_examples=80, deadline=None)
    def test_positive(self, obj):
        assert sizeof(obj) >= 1

    @given(obj=payload)
    @settings(max_examples=80, deadline=None)
    def test_wrapping_monotone(self, obj):
        assert sizeof([obj]) == sizeof(obj) + 1

    @given(items=st.lists(payload, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_list_additive(self, items):
        assert sizeof(items) == 1 + sum(sizeof(i) for i in items)


class TestBlocksProperties:
    @given(n=st.integers(0, 500), b=st.integers(1, 60))
    @settings(max_examples=100, deadline=None)
    def test_partition_exact_cover(self, n, b):
        bs = blocks(n, b)
        covered = [p for lo, hi in bs for p in range(lo, hi)]
        assert covered == list(range(n))

    @given(n=st.integers(1, 500), b=st.integers(1, 60))
    @settings(max_examples=100, deadline=None)
    def test_all_blocks_at_most_b(self, n, b):
        assert all(hi - lo <= b for lo, hi in blocks(n, b))

    @given(n=st.integers(1, 500), b=st.integers(1, 60))
    @settings(max_examples=100, deadline=None)
    def test_block_count_formula(self, n, b):
        assert len(blocks(n, b)) == -(-n // b)


class TestPackByWeightProperties:
    @given(weights=st.lists(st.integers(1, 10), max_size=30),
           cap=st.integers(10, 40))
    @settings(max_examples=100, deadline=None)
    def test_bins_respect_capacity_unless_single_item(self, weights, cap):
        items = list(range(len(weights)))
        for b in pack_by_weight(items, weights, cap):
            load = sum(weights[i] for i in b)
            assert load <= cap or len(b) == 1

    @given(weights=st.lists(st.integers(1, 10), max_size=30),
           cap=st.integers(10, 40))
    @settings(max_examples=100, deadline=None)
    def test_order_preserved_and_complete(self, weights, cap):
        items = list(range(len(weights)))
        flat = [i for b in pack_by_weight(items, weights, cap) for i in b]
        assert flat == items


tuple_strategy = st.tuples(
    st.integers(0, 10), st.integers(1, 6),   # lo, extent_s
    st.integers(0, 10), st.integers(0, 6),   # sp, extent_t
    st.integers(0, 6))                        # d


def _mk(t):
    lo, ds, sp, dt, d = t
    return (lo, lo + ds, sp, sp + dt, d)


class TestCombineDPProperties:
    @given(ts=st.lists(tuple_strategy, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_ulam_combine_bounded_by_trivial(self, ts):
        tuples = [_mk(t) for t in ts]
        assert combine_tuples(tuples, 16, 16) <= 16

    @given(ts=st.lists(tuple_strategy, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_edit_combine_bounded_by_trivial(self, ts):
        tuples = [_mk(t) for t in ts]
        assert combine_edit_tuples(tuples, 16, 16) <= 32

    @given(ts=st.lists(tuple_strategy, max_size=8),
           extra=tuple_strategy)
    @settings(max_examples=80, deadline=None)
    def test_more_tuples_never_hurt(self, ts, extra):
        tuples = [_mk(t) for t in ts]
        more = tuples + [_mk(extra)]
        assert combine_tuples(more, 16, 16) <= \
            combine_tuples(tuples, 16, 16)
        assert combine_edit_tuples(more, 16, 16) <= \
            combine_edit_tuples(tuples, 16, 16)

    @given(ts=st.lists(tuple_strategy, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_overlap_rule_never_worse(self, ts):
        tuples = [_mk(t) for t in ts]
        assert combine_edit_tuples(tuples, 16, 16, allow_overlap=True) <= \
            combine_edit_tuples(tuples, 16, 16, allow_overlap=False)

    @given(ts=st.lists(tuple_strategy, max_size=6),
           inflate=st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_tuple_distances(self, ts, inflate):
        tuples = [_mk(t) for t in ts]
        worse = [(lo, hi, sp, ep, d + inflate)
                 for lo, hi, sp, ep, d in tuples]
        assert combine_tuples(tuples, 16, 16) <= \
            combine_tuples(worse, 16, 16)
