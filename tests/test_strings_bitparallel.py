"""Tests for Myers' bit-parallel kernels and the dispatch that uses them."""

import numpy as np
import pytest

from repro.strings import (fitting_last_row, levenshtein,
                           levenshtein_last_row, myers_fitting_row,
                           myers_last_row, myers_levenshtein)
from repro.strings import edit_distance as ed_mod

from .helpers import brute_edit_distance


class TestMyersLevenshtein:
    def test_against_brute_force(self, rng):
        for _ in range(150):
            m, n = rng.integers(0, 20, 2)
            a = rng.integers(0, 5, m).tolist()
            b = rng.integers(0, 5, n).tolist()
            assert myers_levenshtein(a, b) == brute_edit_distance(a, b)

    def test_paper_example(self):
        assert myers_levenshtein("elephant", "relevant") == 3

    def test_empty_sides(self):
        assert myers_levenshtein([], [1, 2]) == 2
        assert myers_levenshtein([1, 2], []) == 2
        assert myers_levenshtein([], []) == 0

    def test_crosses_word_boundary(self, rng):
        # patterns longer than 64 exercise the multi-word bigint path
        for m in (63, 64, 65, 130, 257):
            a = rng.integers(0, 4, m).tolist()
            b = rng.integers(0, 4, m + 7).tolist()
            assert myers_levenshtein(a, b) == levenshtein(a, b)

    def test_unicode(self):
        assert myers_levenshtein("naïve", "naive") == 1


class TestMyersRows:
    def test_last_row_matches_reference(self, rng):
        for _ in range(80):
            a = rng.integers(0, 4, int(rng.integers(0, 15))).tolist()
            b = rng.integers(0, 4, int(rng.integers(0, 15))).tolist()
            assert np.array_equal(myers_last_row(a, b),
                                  levenshtein_last_row(a, b))

    def test_fitting_row_matches_reference(self, rng):
        for _ in range(80):
            a = rng.integers(0, 4, int(rng.integers(0, 15))).tolist()
            b = rng.integers(0, 4, int(rng.integers(0, 15))).tolist()
            assert np.array_equal(myers_fitting_row(a, b),
                                  fitting_last_row(a, b))

    def test_long_pattern_rows(self, rng):
        a = rng.integers(0, 4, 150)
        b = rng.integers(0, 4, 200)
        assert np.array_equal(myers_last_row(a, b),
                              levenshtein_last_row(a, b))
        assert np.array_equal(myers_fitting_row(a, b),
                              fitting_last_row(a, b))


class TestDispatch:
    def test_dispatch_threshold_consistency(self, rng):
        """Both backends must agree exactly at the dispatch boundary."""
        m = ed_mod._BITPARALLEL_MIN_M
        for mm in (m - 1, m, m + 1):
            a = rng.integers(0, 4, mm)
            b = rng.integers(0, 4, 2 * m)
            via_dispatch = levenshtein_last_row(a, b)
            direct = myers_last_row(a, b)
            assert np.array_equal(via_dispatch, direct)

    def test_dispatch_patchable_for_isolation(self, rng, monkeypatch):
        # force the pure-NumPy path even for long patterns
        monkeypatch.setattr(ed_mod, "_BITPARALLEL_MIN_M", 10 ** 9)
        a = rng.integers(0, 4, 150)
        b = rng.integers(0, 4, 150)
        numpy_only = levenshtein_last_row(a, b)
        monkeypatch.setattr(ed_mod, "_BITPARALLEL_MIN_M", 1)
        myers_only = levenshtein_last_row(a, b)
        assert np.array_equal(numpy_only, myers_only)
