"""Tests for the labelled metrics registry (repro.metrics).

This file is the single sanctioned place outside ``src/repro/`` that
obtains instrument handles (``counter``/``gauge``/``histogram``) — the
API-boundary checker exempts it by name.
"""

import json

import pytest

from repro.metrics import (MetricsRegistry, disable, enable, enabled,
                           get_registry, merge_snapshots, metric_key)


class TestMetricKey:
    def test_no_labels(self):
        assert metric_key("dp.cells", {}) == "dp.cells"

    def test_labels_sorted(self):
        key = metric_key("dp.cells", {"kernel": "banded", "algo": "edit"})
        assert key == "dp.cells{algo=edit,kernel=banded}"


class TestInstruments:
    def test_counter_disabled_is_noop(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(5)
        assert c.value == 0 and not c.touched

    def test_counter_enabled_accumulates(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("c")
        c.inc()
        c.inc(41)
        assert c.value == 42 and c.touched

    def test_gauge_last_set_wins(self):
        reg = MetricsRegistry(enabled=True)
        g = reg.gauge("g")
        g.set(3)
        g.set(7)
        assert g.value == 7

    def test_gauge_disabled_is_noop(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(3)
        assert g.value == 0 and not g.touched

    def test_histogram_moments(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("h")
        for v in (4, 1, 7):
            h.observe(v)
        snap = h._snapshot()
        assert snap == {"type": "histogram", "count": 3, "sum": 12,
                        "min": 1, "max": 7}

    def test_histogram_disabled_is_noop(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(5)
        assert h.count == 0 and h.min is None and not h.touched

    def test_handles_are_cached_per_name_and_labels(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.counter("c", a=1) is reg.counter("c", a=1)
        assert reg.counter("c", a=1) is not reg.counter("c", a=2)

    def test_type_conflict_raises(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("m")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("m")


class TestSnapshots:
    def _loaded(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("work", phase="dense").inc(100)
        reg.gauge("top_k").set(8)
        reg.histogram("per_block").observe(3)
        reg.histogram("per_block").observe(5)
        return reg

    def test_snapshot_includes_only_touched(self):
        reg = self._loaded()
        reg.counter("never.written")    # handle exists, never incremented
        snap = reg.snapshot()
        assert set(snap) == {"work{phase=dense}", "top_k", "per_block"}

    def test_snapshot_is_json_serialisable(self):
        snap = self._loaded().snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_snapshot_keys_sorted(self):
        snap = self._loaded().snapshot()
        assert list(snap) == sorted(snap)

    def test_delta_counters_subtract(self):
        reg = self._loaded()
        mark = reg.mark()
        reg.counter("work", phase="dense").inc(50)
        delta = MetricsRegistry.delta(mark, reg.snapshot())
        assert delta["work{phase=dense}"]["value"] == 50

    def test_delta_drops_untouched_series(self):
        reg = self._loaded()
        mark = reg.mark()
        reg.counter("work", phase="dense").inc(1)
        delta = MetricsRegistry.delta(mark, reg.snapshot())
        # gauge unchanged, histogram saw no new observations
        assert "top_k" not in delta and "per_block" not in delta

    def test_delta_gauge_reports_change_and_first_appearance(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("g").set(1)
        mark = reg.mark()
        reg.gauge("g").set(2)
        reg.gauge("fresh").set(9)
        delta = MetricsRegistry.delta(mark, reg.snapshot())
        assert delta["g"]["value"] == 2
        assert delta["fresh"]["value"] == 9

    def test_delta_histogram_windows_count_and_sum(self):
        reg = MetricsRegistry(enabled=True)
        reg.histogram("h").observe(10)
        mark = reg.mark()
        reg.histogram("h").observe(2)
        delta = MetricsRegistry.delta(mark, reg.snapshot())
        assert delta["h"]["count"] == 1 and delta["h"]["sum"] == 2
        # min/max cannot be windowed post-hoc: cumulative extremes.
        assert delta["h"]["min"] == 2 and delta["h"]["max"] == 10

    def test_delta_from_empty_mark_is_full_snapshot(self):
        reg = self._loaded()
        assert MetricsRegistry.delta({}, reg.snapshot()) == reg.snapshot()

    def test_reset_keeps_cached_handles_valid(self):
        reg = self._loaded()
        c = reg.counter("work", phase="dense")
        reg.reset()
        assert reg.snapshot() == {}
        c.inc(7)
        assert reg.snapshot() == {
            "work{phase=dense}": {"type": "counter", "value": 7}}


class TestMergeSnapshots:
    def test_empty_is_identity(self):
        snap = {"c": {"type": "counter", "value": 3}}
        assert merge_snapshots(snap, {}) == snap
        assert merge_snapshots({}, snap) == snap

    def test_counters_add_gauges_max(self):
        a = {"c": {"type": "counter", "value": 3},
             "g": {"type": "gauge", "value": 5}}
        b = {"c": {"type": "counter", "value": 4},
             "g": {"type": "gauge", "value": 2}}
        merged = merge_snapshots(a, b)
        assert merged["c"]["value"] == 7
        assert merged["g"]["value"] == 5

    def test_histograms_combine_exactly(self):
        a = {"h": {"type": "histogram", "count": 2, "sum": 6,
                   "min": 1, "max": 5}}
        b = {"h": {"type": "histogram", "count": 1, "sum": 9,
                   "min": 9, "max": 9}}
        merged = merge_snapshots(a, b)
        assert merged["h"] == {"type": "histogram", "count": 3, "sum": 15,
                               "min": 1, "max": 9}

    def test_inputs_not_mutated(self):
        a = {"c": {"type": "counter", "value": 3}}
        b = {"c": {"type": "counter", "value": 4}}
        merge_snapshots(a, b)
        assert a["c"]["value"] == 3 and b["c"]["value"] == 4

    def test_type_mismatch_raises(self):
        a = {"m": {"type": "counter", "value": 3}}
        b = {"m": {"type": "gauge", "value": 4}}
        with pytest.raises(ValueError, match="cannot merge"):
            merge_snapshots(a, b)

    def test_incomparable_gauges_take_right_value(self):
        a = {"g": {"type": "gauge", "value": "small"}}
        b = {"g": {"type": "gauge", "value": 4}}
        assert merge_snapshots(a, b)["g"]["value"] == 4


class TestGlobalRegistry:
    def test_disabled_by_default(self):
        # The conftest fixture restores the pristine state around every
        # test, so observing the default here is sound.
        assert get_registry().enabled is False

    def test_enable_disable_toggle(self):
        enable()
        assert get_registry().enabled
        disable()
        assert not get_registry().enabled

    def test_enabled_context_restores_prior_state(self):
        assert not get_registry().enabled
        with enabled():
            assert get_registry().enabled
            with enabled(False):
                assert not get_registry().enabled
            assert get_registry().enabled
        assert not get_registry().enabled

    def test_enabled_context_collects(self):
        with enabled() as reg:
            reg.counter("scoped").inc(2)
        snap = get_registry().snapshot()
        assert snap["scoped"]["value"] == 2
