"""Tests for the labelled metrics registry (repro.metrics).

This file is the single sanctioned place outside ``src/repro/`` that
obtains instrument handles (``counter``/``gauge``/``histogram``) — the
API-boundary checker exempts it by name.
"""

import json

import pytest

from repro.metrics import (MetricsRegistry, disable, enable, enabled,
                           get_registry, merge_snapshots, metric_key,
                           scoped_snapshot)


class TestMetricKey:
    def test_no_labels(self):
        assert metric_key("dp.cells", {}) == "dp.cells"

    def test_labels_sorted(self):
        key = metric_key("dp.cells", {"kernel": "banded", "algo": "edit"})
        assert key == "dp.cells{algo=edit,kernel=banded}"


class TestInstruments:
    def test_counter_disabled_is_noop(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(5)
        assert c.value == 0 and not c.touched

    def test_counter_enabled_accumulates(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("c")
        c.inc()
        c.inc(41)
        assert c.value == 42 and c.touched

    def test_gauge_last_set_wins(self):
        reg = MetricsRegistry(enabled=True)
        g = reg.gauge("g")
        g.set(3)
        g.set(7)
        assert g.value == 7

    def test_gauge_disabled_is_noop(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(3)
        assert g.value == 0 and not g.touched

    def test_histogram_moments(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("h")
        for v in (4, 1, 7):
            h.observe(v)
        snap = h._snapshot()
        assert snap == {"type": "histogram", "count": 3, "sum": 12,
                        "min": 1, "max": 7}

    def test_histogram_disabled_is_noop(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(5)
        assert h.count == 0 and h.min is None and not h.touched

    def test_handles_are_cached_per_name_and_labels(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.counter("c", a=1) is reg.counter("c", a=1)
        assert reg.counter("c", a=1) is not reg.counter("c", a=2)

    def test_type_conflict_raises(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("m")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("m")


class TestSnapshots:
    def _loaded(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("work", phase="dense").inc(100)
        reg.gauge("top_k").set(8)
        reg.histogram("per_block").observe(3)
        reg.histogram("per_block").observe(5)
        return reg

    def test_snapshot_includes_only_touched(self):
        reg = self._loaded()
        reg.counter("never.written")    # handle exists, never incremented
        snap = reg.snapshot()
        assert set(snap) == {"work{phase=dense}", "top_k", "per_block"}

    def test_snapshot_is_json_serialisable(self):
        snap = self._loaded().snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_snapshot_keys_sorted(self):
        snap = self._loaded().snapshot()
        assert list(snap) == sorted(snap)

    def test_delta_counters_subtract(self):
        reg = self._loaded()
        mark = reg.mark()
        reg.counter("work", phase="dense").inc(50)
        delta = MetricsRegistry.delta(mark, reg.snapshot())
        assert delta["work{phase=dense}"]["value"] == 50

    def test_delta_drops_untouched_series(self):
        reg = self._loaded()
        mark = reg.mark()
        reg.counter("work", phase="dense").inc(1)
        delta = MetricsRegistry.delta(mark, reg.snapshot())
        # gauge unchanged, histogram saw no new observations
        assert "top_k" not in delta and "per_block" not in delta

    def test_delta_gauge_reports_change_and_first_appearance(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("g").set(1)
        mark = reg.mark()
        reg.gauge("g").set(2)
        reg.gauge("fresh").set(9)
        delta = MetricsRegistry.delta(mark, reg.snapshot())
        assert delta["g"]["value"] == 2
        assert delta["fresh"]["value"] == 9

    def test_delta_histogram_windows_count_and_sum(self):
        reg = MetricsRegistry(enabled=True)
        reg.histogram("h").observe(10)
        mark = reg.mark()
        reg.histogram("h").observe(2)
        delta = MetricsRegistry.delta(mark, reg.snapshot())
        assert delta["h"]["count"] == 1 and delta["h"]["sum"] == 2
        # min/max cannot be windowed post-hoc: cumulative extremes.
        assert delta["h"]["min"] == 2 and delta["h"]["max"] == 10

    def test_delta_from_empty_mark_is_full_snapshot(self):
        reg = self._loaded()
        assert MetricsRegistry.delta({}, reg.snapshot()) == reg.snapshot()

    def test_reset_keeps_cached_handles_valid(self):
        reg = self._loaded()
        c = reg.counter("work", phase="dense")
        reg.reset()
        assert reg.snapshot() == {}
        c.inc(7)
        assert reg.snapshot() == {
            "work{phase=dense}": {"type": "counter", "value": 7}}


class TestMergeSnapshots:
    def test_empty_is_identity(self):
        snap = {"c": {"type": "counter", "value": 3}}
        assert merge_snapshots(snap, {}) == snap
        assert merge_snapshots({}, snap) == snap

    def test_counters_add_gauges_max(self):
        a = {"c": {"type": "counter", "value": 3},
             "g": {"type": "gauge", "value": 5}}
        b = {"c": {"type": "counter", "value": 4},
             "g": {"type": "gauge", "value": 2}}
        merged = merge_snapshots(a, b)
        assert merged["c"]["value"] == 7
        assert merged["g"]["value"] == 5

    def test_histograms_combine_exactly(self):
        a = {"h": {"type": "histogram", "count": 2, "sum": 6,
                   "min": 1, "max": 5}}
        b = {"h": {"type": "histogram", "count": 1, "sum": 9,
                   "min": 9, "max": 9}}
        merged = merge_snapshots(a, b)
        assert merged["h"] == {"type": "histogram", "count": 3, "sum": 15,
                               "min": 1, "max": 9}

    def test_inputs_not_mutated(self):
        a = {"c": {"type": "counter", "value": 3}}
        b = {"c": {"type": "counter", "value": 4}}
        merge_snapshots(a, b)
        assert a["c"]["value"] == 3 and b["c"]["value"] == 4

    def test_type_mismatch_raises(self):
        a = {"m": {"type": "counter", "value": 3}}
        b = {"m": {"type": "gauge", "value": 4}}
        with pytest.raises(ValueError, match="cannot merge"):
            merge_snapshots(a, b)

    def test_incomparable_gauges_take_right_value(self):
        a = {"g": {"type": "gauge", "value": "small"}}
        b = {"g": {"type": "gauge", "value": 4}}
        assert merge_snapshots(a, b)["g"]["value"] == 4


class TestGlobalRegistry:
    def test_disabled_by_default(self):
        # The conftest fixture restores the pristine state around every
        # test, so observing the default here is sound.
        assert get_registry().enabled is False

    def test_enable_disable_toggle(self):
        enable()
        assert get_registry().enabled
        disable()
        assert not get_registry().enabled

    def test_enabled_context_restores_prior_state(self):
        assert not get_registry().enabled
        with enabled():
            assert get_registry().enabled
            with enabled(False):
                assert not get_registry().enabled
            assert get_registry().enabled
        assert not get_registry().enabled

    def test_enabled_context_collects(self):
        with enabled() as reg:
            reg.counter("scoped").inc(2)
        snap = get_registry().snapshot()
        assert snap["scoped"]["value"] == 2


class TestScopedSnapshot:
    def test_scope_collects_writes_in_delta_format(self):
        enable()
        with scoped_snapshot() as scope:
            get_registry().counter("sc.c").inc(3)
            get_registry().gauge("sc.g").set(7)
            get_registry().histogram("sc.h").observe(2)
            get_registry().histogram("sc.h").observe(5)
        assert scope.delta() == {
            "sc.c": {"type": "counter", "value": 3},
            "sc.g": {"type": "gauge", "value": 7},
            "sc.h": {"type": "histogram", "count": 2, "sum": 7,
                     "min": 2, "max": 5},
        }

    def test_writes_outside_scope_excluded(self):
        enable()
        get_registry().counter("sc.before").inc(10)
        with scoped_snapshot() as scope:
            get_registry().counter("sc.inside").inc(1)
        get_registry().counter("sc.after").inc(10)
        assert list(scope.delta()) == ["sc.inside"]

    def test_disabled_registry_records_nothing(self):
        assert not get_registry().enabled
        with scoped_snapshot() as scope:
            get_registry().counter("sc.c").inc(5)
        assert scope.delta() == {}

    def test_scopes_nest(self):
        enable()
        with scoped_snapshot() as outer:
            get_registry().counter("sc.c").inc(1)
            with scoped_snapshot() as inner:
                get_registry().counter("sc.c").inc(2)
        assert outer.delta()["sc.c"]["value"] == 3
        assert inner.delta()["sc.c"]["value"] == 2

    def test_windowed_histogram_extremes_are_exact(self):
        # The registry saw an earlier extreme observation; the scope's
        # min/max must reflect only the window (unlike mark()/delta(),
        # whose extremes are cumulative).
        enable()
        get_registry().histogram("sc.h").observe(1000)
        with scoped_snapshot() as scope:
            get_registry().histogram("sc.h").observe(4)
        assert scope.delta()["sc.h"]["min"] == 4
        assert scope.delta()["sc.h"]["max"] == 4

    def test_concurrent_threads_do_not_bleed(self):
        # Each thread starts with its own context, so a scope opened in
        # one worker never sees another worker's increments even though
        # all of them hammer the same shared counter handle.
        import threading

        enable()
        deltas = {}
        barrier = threading.Barrier(4)

        def worker(wid: int) -> None:
            barrier.wait()
            with scoped_snapshot() as scope:
                for _ in range(200):
                    get_registry().counter("sc.shared").inc()
                get_registry().counter("sc.mine", w=wid).inc(wid)
            deltas[wid] = scope.delta()

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for wid in range(4):
            delta = deltas[wid]
            assert delta["sc.shared"]["value"] == 200
            mine = [k for k in delta if k.startswith("sc.mine")]
            assert mine == ([f"sc.mine{{w={wid}}}"] if wid else [])
        # The shared registry still holds the cumulative total.
        snap = get_registry().snapshot()
        assert snap["sc.shared"]["value"] == 800

    def test_overlapping_async_tasks_get_exact_deltas(self):
        # The service execution pattern: concurrent tasks, each wrapping
        # its work in one scope and hopping through asyncio.to_thread
        # (which copies the ambient context into the worker thread).
        import asyncio

        enable()

        async def query(amount: int) -> dict:
            with scoped_snapshot() as scope:
                for _ in range(3):
                    await asyncio.to_thread(
                        lambda: get_registry().counter("sc.q").inc(amount))
                    await asyncio.sleep(0)
            return scope.delta()

        async def main():
            return await asyncio.gather(query(1), query(10), query(100))

        one, ten, hundred = asyncio.run(main())
        assert one["sc.q"]["value"] == 3
        assert ten["sc.q"]["value"] == 30
        assert hundred["sc.q"]["value"] == 300
