"""Unit tests for the edit-distance machine functions (round level)."""

import numpy as np
import pytest

from repro.editdistance.candidates import candidate_windows, length_offsets
from repro.editdistance.large import (group_candidates_by_start,
                                      run_block_vs_groups_machine,
                                      run_pair_distance_machine,
                                      run_rep_distance_machine)
from repro.editdistance.small import run_small_block_machine
from repro.strings import levenshtein
from repro.workloads.strings import planted_pair


@pytest.fixture
def instance(rng):
    s, t, _ = planted_pair(96, 10, sigma=4, seed=5)
    return s, t


def _small_payload(s, t, inner, starts, top_k=None):
    B = 24
    offsets = length_offsets(B, 32, 0.25)
    lo_text = min(starts)
    hi_text = min(max(starts) + int(B / 0.25), len(t))
    return {
        "lo": 0, "hi": B, "block": s[:B],
        "text": t[lo_text:hi_text], "text_off": lo_text,
        "starts": starts, "offsets": offsets,
        "eps_prime": 0.25, "n_t": len(t),
        "inner": inner, "eps_inner": 0.5, "top_k": top_k,
    }


class TestSmallBlockMachine:
    def test_row_mode_distances_exact(self, instance):
        s, t = instance
        out = run_small_block_machine(_small_payload(s, t, "row", [0, 8]))
        assert out
        for lo, hi, st, en, d in out:
            assert d == levenshtein(s[lo:hi], t[st:en])

    def test_row_matches_per_pair_exact(self, instance):
        s, t = instance
        row = run_small_block_machine(_small_payload(s, t, "row", [0, 8]))
        exact = run_small_block_machine(
            _small_payload(s, t, "exact", [0, 8]))
        assert sorted(row) == sorted(exact)

    def test_cgks_upper_bounds_row(self, instance):
        s, t = instance
        row = {(st, en): d for _, _, st, en, d in
               run_small_block_machine(_small_payload(s, t, "row", [0]))}
        cgks = {(st, en): d for _, _, st, en, d in
                run_small_block_machine(_small_payload(s, t, "cgks", [0]))}
        assert set(row) == set(cgks)
        for key in row:
            assert cgks[key] >= row[key]

    def test_top_k_truncates_to_best(self, instance):
        s, t = instance
        full = run_small_block_machine(_small_payload(s, t, "row", [0, 8]))
        capped = run_small_block_machine(
            _small_payload(s, t, "row", [0, 8], top_k=3))
        assert len(capped) == 3
        assert sorted(d for *_, d in capped) == \
            sorted(d for *_, d in full)[:3]

    def test_windows_match_candidate_geometry(self, instance):
        s, t = instance
        payload = _small_payload(s, t, "row", [8])
        out = run_small_block_machine(payload)
        expected = set(candidate_windows(8, 24, payload["offsets"],
                                         0.25, len(t)))
        assert {(st, en) for _, _, st, en, _ in out} == expected


class TestRepDistanceMachine:
    def test_layout_contract(self, instance):
        s, t = instance
        groups = [(0, t[0:30], [10, 20, 30]), (16, t[16:40], [28, 40])]
        blocks = [(("b", 0, 24), s[0:24])]
        reps = [(0, s[0:24]), (1, t[8:32])]
        out = run_rep_distance_machine({
            "reps": reps, "blocks": blocks, "cs_groups": groups,
            "solver": "banded", "eps_inner": 0.5})
        # layout: per rep: blocks, then group endpoints in order
        per_rep = 1 + 3 + 2
        assert len(out) == 2 * per_rep
        k = 0
        for rep_idx, rep_arr in reps:
            assert out[k] == levenshtein(rep_arr, s[0:24])
            k += 1
            for st, seg, ens in groups:
                for en in ens:
                    assert out[k] == levenshtein(rep_arr, t[st:en])
                    k += 1

    def test_returns_int64_array(self, instance):
        s, t = instance
        out = run_rep_distance_machine({
            "reps": [(0, s[:10])], "blocks": [],
            "cs_groups": [(0, t[:10], [5, 10])],
            "solver": "exact", "eps_inner": 0.5})
        assert isinstance(out, np.ndarray) and out.dtype == np.int64


class TestBlockVsGroupsMachine:
    def test_distances_exact_in_group_order(self, instance):
        s, t = instance
        groups = [(4, t[4:40], [12, 20, 36]), (40, t[40:70], [52, 64])]
        out = run_block_vs_groups_machine({
            "lo": 0, "hi": 24, "block": s[:24], "cs_groups": groups})
        k = 0
        for st, seg, ens in groups:
            for en in ens:
                assert out[k] == levenshtein(s[:24], t[st:en])
                k += 1
        assert k == len(out)


class TestPairDistanceMachine:
    def test_item_order_and_exactness(self, instance):
        s, t = instance
        items = [(0, 24, s[0:24], 4, 30, t[4:30]),
                 (24, 48, s[24:48], 20, 44, t[20:44])]
        out = run_pair_distance_machine({
            "items": items, "solver": "banded", "eps_inner": 0.5})
        assert out.tolist() == [levenshtein(s[0:24], t[4:30]),
                                levenshtein(s[24:48], t[20:44])]


class TestGroupCandidates:
    def test_rejects_non_candidate_nodes(self):
        with pytest.raises(ValueError):
            group_candidates_by_start([("b", 0, 4)])
