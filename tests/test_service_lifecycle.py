"""Segment lifecycle under cancellation, chaos and shutdown (satellite).

A query's scratch plane and its corpus's segments must never outlive
the service, no matter how the query ends: normal exhaustion, injected
machine failures with retries, or ``asyncio.CancelledError`` landing on
any await.  The service's ``close()`` asserts zero leaked segments, so
every test here is double-checked by shutdown itself.
"""

import asyncio
import json

import pytest

from repro.analysis import filter_spans
from repro.metrics import enable
from repro.mpc import FaultPlan, ResilientSimulator, RetryPolicy, Tracer
from repro.mpc.shm import active_segments
from repro.params import UlamParams
from repro.service import DistanceService, run_workload
from repro.ulam import mpc_ulam
from repro.workloads.permutations import planted_pair as perm_pair
from repro.workloads.strings import planted_pair as str_pair

N = 256
BUDGET = 16


def _ledger(stats) -> str:
    summary = stats.summary()
    summary.pop("wall_seconds", None)
    return json.dumps(summary, sort_keys=True)


class TestCancellation:
    def test_cancel_mid_query_leaves_no_segments(self):
        s, t, _ = perm_pair(N, BUDGET, seed=0, style="mixed")

        async def main():
            async with DistanceService() as service:
                cid = service.register_corpus(s, t)
                handle = service.submit("ulam", cid, seed=1)
                # Let the first round get in flight, then cancel: the
                # round finishes in its worker thread, the generator is
                # finalised (closing the scratch plane), and only then
                # does the cancellation propagate.
                await asyncio.sleep(0.05)
                handle.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await handle
            # close() asserted zero active segments already.

        asyncio.run(main())
        assert not active_segments()

    def test_cancel_immediately_after_submit(self):
        s, t, _ = perm_pair(N, BUDGET, seed=0, style="mixed")

        async def main():
            async with DistanceService() as service:
                cid = service.register_corpus(s, t)
                handle = service.submit("ulam", cid, seed=1)
                handle.cancel()  # before the task ever ran
                with pytest.raises(asyncio.CancelledError):
                    await handle

        asyncio.run(main())
        assert not active_segments()

    def test_cancelled_query_does_not_disturb_siblings(self):
        s, t, _ = perm_pair(N, BUDGET, seed=0, style="mixed")
        reference = mpc_ulam(s, t, x=0.25, eps=0.5, seed=2)

        async def main():
            async with DistanceService() as service:
                cid = service.register_corpus(s, t)
                victim = service.submit("ulam", cid, seed=1)
                survivor = service.submit("ulam", cid, seed=2)
                await asyncio.sleep(0.02)
                victim.cancel()
                outcome = await survivor
                with pytest.raises(asyncio.CancelledError):
                    await victim
                return outcome

        outcome = asyncio.run(main())
        assert outcome.distance == reference.distance
        assert _ledger(outcome.stats) == _ledger(reference.stats)
        assert not active_segments()


class TestChaosThroughService:
    SPEC = "crash=0.4,straggle=0.2x4"

    def test_fault_plan_query_matches_one_shot_chaos_run(self):
        s, t, _ = perm_pair(N, BUDGET, seed=0, style="mixed")
        params = UlamParams(n=N, x=0.25, eps=0.5)
        sim = ResilientSimulator(
            memory_limit=params.memory_limit,
            fault_plan=FaultPlan.from_spec(self.SPEC, seed=7),
            retry_policy=RetryPolicy(max_attempts=3))
        reference = mpc_ulam(s, t, x=0.25, eps=0.5, seed=2, sim=sim)
        assert reference.stats.total_attempts > reference.stats.n_rounds

        async def main():
            async with DistanceService() as service:
                cid = service.register_corpus(s, t)
                return await service.submit(
                    "ulam", cid, seed=2,
                    fault_plan=FaultPlan.from_spec(self.SPEC, seed=7),
                    max_attempts=3, check_guarantees=False)

        outcome = asyncio.run(main())
        assert outcome.distance == reference.distance
        assert _ledger(outcome.stats) == _ledger(reference.stats)
        assert not active_segments()

    def test_chaos_retries_mid_service_leak_nothing(self):
        s_p, t_p, _ = perm_pair(N, BUDGET, seed=0, style="mixed")
        s_s, t_s, _ = str_pair(N, BUDGET, sigma=4, seed=0)
        plan = FaultPlan.from_spec("crash=0.2,straggle=0.2x4", seed=11)
        queries = [
            {"algo": "ulam", "s": s_p, "t": t_p, "seed": 1,
             "fault_plan": plan, "max_attempts": 6},
            {"algo": "edit", "s": s_s, "t": t_s, "seed": 2,
             "fault_plan": plan, "max_attempts": 6},
            {"algo": "ulam", "s": s_p, "t": t_p, "seed": 3},
        ]
        outcomes, _ = run_workload(queries, check_guarantees=False)
        assert [o.algo for o in outcomes] == ["ulam", "edit", "ulam"]
        assert all(o.distance >= 0 for o in outcomes)
        assert not active_segments()

    def test_exhausted_retries_propagate_and_leak_nothing(self):
        s, t, _ = perm_pair(N, BUDGET, seed=0, style="mixed")

        async def main():
            async with DistanceService() as service:
                cid = service.register_corpus(s, t)
                handle = service.submit(
                    "ulam", cid, seed=1,
                    fault_plan=FaultPlan.from_spec("crash=1.0", seed=1),
                    max_attempts=2, check_guarantees=False)
                with pytest.raises(Exception):
                    await handle

        asyncio.run(main())
        assert not active_segments()


class TestScopeIsolation:
    """Spans and metric deltas never bleed across sibling queries.

    The per-query ``MetricsScope`` and the tracer's contextvar stamping
    must hold up under the two ugliest interleavings: a sibling dying
    to ``asyncio.CancelledError`` mid-round, and a sibling burning
    retries against injected faults.  In both cases the unaffected
    query's span slice, metric delta and ledger must be byte-identical
    to a pristine one-shot run of the same parameters.
    """

    def test_cancelled_sibling_leaks_no_spans_or_metrics(self):
        enable()
        s, t, _ = perm_pair(N, BUDGET, seed=0, style="mixed")
        reference = mpc_ulam(s, t, x=0.25, eps=0.5, seed=2)
        tracer = Tracer.in_memory()

        async def main():
            async with DistanceService(tracer=tracer) as service:
                cid = service.register_corpus(s, t)
                victim = service.submit("ulam", cid, seed=1)
                survivor = service.submit("ulam", cid, seed=2)
                await asyncio.sleep(0.02)
                victim.cancel()
                outcome = await survivor
                with pytest.raises(asyncio.CancelledError):
                    await victim
                return outcome

        outcome = asyncio.run(main())
        spans = tracer.spans
        mine = filter_spans(spans, outcome.query_id)
        assert mine
        assert all(sp.trace_id == outcome.trace_id for sp in mine)
        # Whatever the victim emitted before dying carries the victim's
        # ids — nothing unattributed, nothing stamped with the
        # survivor's identity.
        for sp in spans:
            if sp.query_id != outcome.query_id:
                assert sp.query_id >= 0
                assert sp.trace_id and sp.trace_id != outcome.trace_id
        # The survivor's metric delta and ledger match the pristine
        # one-shot run exactly: the cancellation polluted nothing.
        assert outcome.metrics == reference.stats.metrics
        assert _ledger(outcome.stats) == _ledger(reference.stats)
        assert not active_segments()

    def test_chaos_retry_waste_stays_with_faulty_query(self):
        enable()
        s, t, _ = perm_pair(N, BUDGET, seed=0, style="mixed")
        reference = mpc_ulam(s, t, x=0.25, eps=0.5, seed=3)
        tracer = Tracer.in_memory()
        queries = [
            {"algo": "ulam", "s": s, "t": t, "seed": 2,
             "fault_plan": FaultPlan.from_spec(
                 "crash=0.4,straggle=0.2x4", seed=7),
             "max_attempts": 3},
            {"algo": "ulam", "s": s, "t": t, "seed": 3},
        ]
        outcomes, _ = run_workload(queries, tracer=tracer,
                                   check_guarantees=False)
        faulty, clean = outcomes
        assert faulty.stats.total_attempts > faulty.stats.n_rounds

        spans = tracer.spans
        wasted = [sp for sp in spans if sp.wasted]
        assert wasted, "seeded fault plan produced no failed attempts"
        assert {sp.trace_id for sp in wasted} == {faulty.trace_id}
        assert {sp.query_id for sp in wasted} == {faulty.query_id}
        clean_spans = filter_spans(spans, clean.query_id)
        assert clean_spans
        assert not any(sp.wasted for sp in clean_spans)
        # The clean sibling is indistinguishable from a run in an empty
        # process: its sibling's retries charged it nothing.
        assert clean.metrics == reference.stats.metrics
        assert _ledger(clean.stats) == _ledger(reference.stats)
        assert not active_segments()


class TestShutdown:
    def test_drain_then_close_leaves_no_segments(self):
        s_p, t_p, _ = perm_pair(N, BUDGET, seed=0, style="mixed")

        async def main():
            service = DistanceService()
            cid = service.register_corpus(s_p, t_p)
            handles = [service.submit("ulam", cid, seed=i)
                       for i in range(4)]
            await service.drain()
            assert all(h.done() for h in handles)
            # Registered corpora keep their segments alive across
            # drains — a warm service can take more queries...
            assert service.inflight == 0
            outcome = await service.submit("ulam", cid, seed=9)
            assert outcome.distance >= 0
            # ...and only close() unlinks everything.
            await service.close()

        asyncio.run(main())
        assert not active_segments()

    def test_close_is_idempotent(self):
        async def main():
            service = DistanceService()
            await service.close()
            await service.close()

        asyncio.run(main())
