"""Unit tests for straggler analytics and their report rendering."""

import pytest

from repro.analysis import (format_skew, format_timeline, round_skew,
                            timeline_rows, work_decomposition)
from repro.analysis.skew import _percentile
from repro.mpc import Span


def _machine(name, machine, work, start=0.0, dur=0.1, worker=100,
             attempt=1, wasted=False):
    return Span(kind="machine", name=name, machine=machine,
                attempt=attempt, worker=worker, start=start,
                end=start + dur, work=work, wasted=wasted,
                fault="crash" if wasted else "")


def _round(name, start, end, work=0):
    return Span(kind="round", name=name, start=start, end=end, work=work)


#: Two rounds; r1 has a 4x straggler and one discarded attempt.
SPANS = [
    _machine("r1", 0, 100, start=1.0),
    _machine("r1", 1, 100, start=1.0),
    _machine("r1", 2, 400, start=1.0, dur=0.4),
    _machine("r1", 2, 50, start=1.0, attempt=1, wasted=True),
    _round("r1", 1.0, 1.5),
    _machine("r2", 0, 200, start=1.5, worker=200),
    _round("r2", 1.5, 1.7),
]


class TestPercentile:
    def test_endpoints_and_interpolation(self):
        assert _percentile([], 50) == 0.0
        assert _percentile([7], 95) == 7.0
        assert _percentile([1, 2, 3, 4], 0) == 1.0
        assert _percentile([1, 2, 3, 4], 100) == 4.0
        assert _percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)
        assert _percentile([0, 10], 95) == pytest.approx(9.5)


class TestRoundSkew:
    def test_distribution_over_successful_attempts_only(self):
        r1, r2 = round_skew(SPANS)
        assert r1.name == "r1" and r1.machines == 3
        assert r1.work_mean == pytest.approx(200.0)
        assert r1.work_max == 400
        assert r1.straggler_ratio == pytest.approx(2.0)
        assert r1.wasted_spans == 1 and r1.wasted_work == 50
        assert r2.machines == 1 and r2.straggler_ratio == pytest.approx(1.0)

    def test_wall_percentiles_use_span_durations(self):
        r1 = round_skew(SPANS)[0]
        assert r1.wall_p50 == pytest.approx(0.1)
        assert r1.wall_max == pytest.approx(0.4)

    def test_empty_spans(self):
        assert round_skew([]) == []

    def test_all_wasted_round_is_balanced_by_convention(self):
        spans = [_machine("r", 0, 50, wasted=True)]
        (r,) = round_skew(spans)
        assert r.machines == 0 and r.straggler_ratio == 1.0
        assert r.wasted_spans == 1


class TestTimelineRows:
    def test_rebased_sorted_and_aggregated(self):
        rows = timeline_rows(SPANS)
        assert [r.name for r in rows] == ["r1", "r2"]
        assert rows[0].t_start == pytest.approx(0.0)
        assert rows[0].t_end == pytest.approx(0.5)
        assert rows[1].t_start == pytest.approx(0.5)
        assert rows[0].machines == 3 and rows[0].wasted_spans == 1
        assert rows[0].workers == 1 and rows[1].workers == 1

    def test_attempts_is_deepest_attempt(self):
        spans = [_machine("r", 0, 10, attempt=1, wasted=True),
                 _machine("r", 0, 10, attempt=3),
                 _round("r", 0.0, 1.0)]
        (row,) = timeline_rows(spans)
        assert row.attempts == 3

    def test_no_round_spans_no_rows(self):
        assert timeline_rows([_machine("r", 0, 10)]) == []


class TestWorkDecomposition:
    def test_critical_path_sums_per_round_max(self):
        d = work_decomposition(SPANS)
        assert d["total_work"] == 800.0
        assert d["critical_path_work"] == 600.0     # 400 (r1) + 200 (r2)
        assert d["wasted_work"] == 50.0
        assert d["parallelism"] == pytest.approx(800 / 600)
        assert d["critical_share"] == pytest.approx(600 / 800)

    def test_empty_spans_degenerate_values(self):
        d = work_decomposition([])
        assert d["total_work"] == 0.0
        assert d["parallelism"] == 1.0 and d["critical_share"] == 1.0


class TestRendering:
    def test_format_skew_has_rows_and_footer(self):
        out = format_skew(SPANS)
        lines = out.splitlines()
        assert lines[0].startswith("round")
        assert any(line.startswith("r1") for line in lines)
        assert "critical path 600" in lines[-1]
        assert "wasted 50" in lines[-1]
        assert "parallelism 1.33x" in lines[-1]

    def test_format_timeline_has_round_rows(self):
        out = format_timeline(SPANS)
        assert "start_ms" in out.splitlines()[0]
        assert any(line.startswith("r2") for line in out.splitlines())
