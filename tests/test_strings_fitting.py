"""Unit tests for fitting (substring) alignment."""

from repro.strings import (fitting_alignment, fitting_distance,
                           fitting_last_row, levenshtein)

from .helpers import brute_edit_distance, brute_fitting


class TestFittingDistance:
    def test_exact_substring_costs_zero(self):
        assert fitting_distance("ell", "hello") == 0

    def test_empty_pattern(self):
        assert fitting_distance("", "hello") == 0

    def test_empty_text(self):
        assert fitting_distance("abc", "") == 3

    def test_no_overlap_costs_pattern_length(self):
        assert fitting_distance([1, 2, 3], [7, 8, 9, 10]) == 3

    def test_against_brute_force(self, rng):
        for _ in range(120):
            m = int(rng.integers(0, 8))
            n = int(rng.integers(0, 10))
            p = rng.integers(0, 3, m).tolist()
            t = rng.integers(0, 3, n).tolist()
            assert fitting_distance(p, t) == brute_fitting(p, t)[2]

    def test_never_exceeds_global_distance(self, rng):
        for _ in range(40):
            p = rng.integers(0, 4, 7).tolist()
            t = rng.integers(0, 4, 12).tolist()
            assert fitting_distance(p, t) <= levenshtein(p, t)


class TestFittingAlignment:
    def test_window_achieves_reported_distance(self, rng):
        for _ in range(120):
            m = int(rng.integers(0, 8))
            n = int(rng.integers(0, 10))
            p = rng.integers(0, 3, m).tolist()
            t = rng.integers(0, 3, n).tolist()
            g, k, d = fitting_alignment(p, t)
            assert 0 <= g <= k <= n
            assert brute_edit_distance(p, t[g:k]) == d
            assert d == brute_fitting(p, t)[2]

    def test_exact_occurrence_located(self):
        g, k, d = fitting_alignment([5, 6], [1, 2, 5, 6, 3])
        assert d == 0
        assert [1, 2, 5, 6, 3][g:k] == [5, 6]

    def test_empty_pattern_alignment(self):
        assert fitting_alignment([], [1, 2]) == (0, 0, 0)

    def test_empty_text_alignment(self):
        assert fitting_alignment([1, 2], []) == (0, 0, 2)


class TestFittingLastRow:
    def test_entries_are_window_minima_ending_at_j(self, rng):
        p = rng.integers(0, 3, 5).tolist()
        t = rng.integers(0, 3, 7).tolist()
        row = fitting_last_row(p, t)
        for j in range(len(t) + 1):
            expected = min(brute_edit_distance(p, t[g:j])
                           for g in range(j + 1))
            assert row[j] == expected

    def test_monotone_under_pattern_growth(self, rng):
        # a longer pattern can only be harder to fit
        t = rng.integers(0, 3, 10).tolist()
        p = rng.integers(0, 3, 6).tolist()
        assert fitting_distance(p, t) <= fitting_distance(p + [9], t) + 1
