"""Golden-equivalence suite for the repro.mpc.plan port.

``tests/golden/*.json`` freezes, for fixed seeds, every driver's
returned values and per-round (machines, memory, work) ledger as they
were *before* the port onto the declarative pipeline layer.  These
tests re-run the ported drivers and require byte-identical results:
same distances, same machine counts, same words of memory, same units
of work, round for round.

Also covers the two driver-level regressions that rode along with the
port: results now hold a :meth:`RunStats.snapshot` instead of aliasing
the live simulator ledger, and chaos-mode runs flow through the
pipeline unchanged.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

GOLDEN = pathlib.Path(__file__).parent / "golden"


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "golden_generate", GOLDEN / "generate.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("golden_generate", mod)
    spec.loader.exec_module(mod)
    return mod


GEN = _load_generator()


@pytest.mark.parametrize("case", sorted(GEN.CASES))
def test_driver_matches_pre_refactor_fixture(case):
    fixture = json.loads((GOLDEN / f"{case}.json").read_text())
    # Round-trip through JSON so int/list types compare like the fixture.
    fresh = json.loads(json.dumps(GEN.CASES[case](), sort_keys=True))
    assert fresh == fixture


class TestResultStatsSnapshot:
    """Satellite: driver results must not alias the live ledger."""

    def test_ulam_result_stats_detached_from_simulator(self):
        from repro.mpc import MPCSimulator
        from repro.params import UlamParams
        from repro.ulam import mpc_ulam
        from repro.workloads.permutations import planted_pair
        s, t, _ = planted_pair(128, 8, seed=1, style="mixed")
        sim = MPCSimulator(
            memory_limit=UlamParams(n=128, x=0.4, eps=0.5).memory_limit)
        res = mpc_ulam(s, t, x=0.4, eps=0.5, seed=2, sim=sim)
        frozen = [(r.name, r.total_work) for r in res.stats.rounds]
        # Reusing the simulator afterwards must not grow the result's
        # ledger (pre-fix, res.stats WAS sim.stats).
        sim.run_round("extra", lambda p: p, [{"v": 1}])
        sim.stats.rounds[0].total_work += 10 ** 9
        assert [(r.name, r.total_work) for r in res.stats.rounds] == frozen
        assert res.stats.n_rounds < sim.stats.n_rounds

    def test_edit_result_stats_detached_from_simulator(self):
        from repro.editdistance import mpc_edit_distance
        from repro.mpc import MPCSimulator
        from repro.params import EditParams
        from repro.workloads.strings import planted_pair
        s, t, _ = planted_pair(128, 6, sigma=4, seed=3)
        sim = MPCSimulator(
            memory_limit=EditParams(n=128, x=0.25, eps=1.0).memory_limit)
        res = mpc_edit_distance(s, t, x=0.25, eps=1.0, seed=4, sim=sim)
        before = res.stats.n_rounds
        sim.run_round("extra", lambda p: p, [{"v": 1}])
        assert res.stats.n_rounds == before
        assert sim.stats.n_rounds == before + 1


class TestChaosThroughPipeline:
    """Fault injection keeps working now that drivers use Pipeline."""

    PLAN_SPEC = "crash=0.1,straggle=0.1x4"

    def _chaos_sim(self, memory_limit, seed, on_exhausted="raise"):
        from repro.mpc import FaultPlan, ResilientSimulator, RetryPolicy
        return ResilientSimulator(
            memory_limit=memory_limit,
            fault_plan=FaultPlan.from_spec(self.PLAN_SPEC, seed=seed),
            retry_policy=RetryPolicy(max_attempts=4),
            on_exhausted=on_exhausted)

    def test_ulam_chaos_matches_clean_distance(self):
        from repro.params import UlamParams
        from repro.ulam import mpc_ulam
        from repro.workloads.permutations import planted_pair
        s, t, _ = planted_pair(192, 12, seed=6, style="mixed")
        clean = mpc_ulam(s, t, x=0.4, eps=0.5, seed=7)
        sim = self._chaos_sim(
            UlamParams(n=192, x=0.4, eps=0.5).memory_limit, seed=8)
        chaotic = mpc_ulam(s, t, x=0.4, eps=0.5, seed=7, sim=sim)
        assert chaotic.distance == clean.distance
        # at least one retry wave ran beyond the two scheduled rounds
        assert chaotic.stats.total_attempts > chaotic.stats.n_rounds
        # the chaos ledger still carries the broadcast charge
        assert chaotic.stats.rounds[0].broadcast_words > 0

    def test_edit_chaos_drop_mode_returns_valid_bound(self):
        from repro.editdistance import mpc_edit_distance
        from repro.params import EditParams
        from repro.strings import levenshtein
        from repro.workloads.strings import planted_pair
        s, t, _ = planted_pair(160, 8, sigma=4, seed=9)
        sim = self._chaos_sim(
            EditParams(n=160, x=0.25, eps=1.0).memory_limit, seed=10,
            on_exhausted="drop")
        res = mpc_edit_distance(s, t, x=0.25, eps=1.0, seed=11, sim=sim)
        # drop-mode answers stay valid upper bounds
        assert levenshtein(s, t) <= res.distance <= len(s) + len(t)


class TestCommunicationLedger:
    """The ported drivers report shuffle/broadcast volumes end to end."""

    def test_ulam_summary_reports_shuffle_words(self):
        from repro.ulam import mpc_ulam
        from repro.workloads.permutations import planted_pair
        s, t, _ = planted_pair(128, 8, seed=20, style="mixed")
        res = mpc_ulam(s, t, x=0.4, eps=0.5, seed=21)
        summary = res.stats.summary()
        assert summary["shuffle_words"] > 0
        assert summary["broadcast_words"] > 0
        r1 = res.stats.rounds[0]
        assert r1.broadcast_words > 0 and r1.shuffle_words > 0

    def test_format_communication_renders_all_rounds(self):
        from repro.analysis import format_communication
        from repro.editdistance import mpc_edit_distance
        from repro.workloads.strings import planted_pair
        s, t, _ = planted_pair(128, 6, sigma=4, seed=22)
        res = mpc_edit_distance(s, t, x=0.25, eps=1.0, seed=23)
        text = format_communication(res.stats)
        lines = text.splitlines()
        assert lines[0].split()[:3] == ["round", "machines", "words_in"]
        assert len(lines) == 2 + res.stats.n_rounds + 1  # hdr+rule+TOTAL
        assert lines[-1].startswith("TOTAL")

    def test_cli_comm_flag_prints_ledger(self, capsys):
        from repro.cli import main
        assert main(["ulam", "--n", "64", "--x", "0.4", "--comm"]) == 0
        out = capsys.readouterr().out
        assert "Communication ledger" in out
        assert "shuffle_words" in out
