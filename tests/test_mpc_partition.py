"""Unit tests for partitioning helpers."""

import pytest

from repro.mpc import block_of, blocks, chunk, pack_by_weight


class TestBlocks:
    def test_exact_division(self):
        assert blocks(8, 4) == [(0, 4), (4, 8)]

    def test_remainder_absorbed_by_last_block(self):
        assert blocks(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_single_block(self):
        assert blocks(3, 10) == [(0, 3)]

    def test_empty(self):
        assert blocks(0, 4) == []

    def test_covers_range_without_overlap(self):
        bs = blocks(97, 13)
        assert bs[0][0] == 0 and bs[-1][1] == 97
        for (a, b), (c, d) in zip(bs, bs[1:]):
            assert b == c and a < b

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            blocks(-1, 4)
        with pytest.raises(ValueError):
            blocks(4, 0)


class TestBlockOf:
    def test_maps_position_to_block(self):
        assert block_of(0, 4) == 0
        assert block_of(3, 4) == 0
        assert block_of(4, 4) == 1

    def test_consistent_with_blocks(self):
        bs = blocks(50, 7)
        for pos in range(50):
            i = block_of(pos, 7)
            lo, hi = bs[i]
            assert lo <= pos < hi

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_of(-1, 4)
        with pytest.raises(ValueError):
            block_of(1, 0)


class TestChunk:
    def test_chunks(self):
        assert list(chunk([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]

    def test_empty(self):
        assert list(chunk([], 3)) == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(chunk([1], 0))


class TestPackByWeight:
    def test_respects_capacity(self):
        bins = pack_by_weight("abcdef", [2, 2, 2, 2, 2, 2], capacity=4)
        assert bins == [["a", "b"], ["c", "d"], ["e", "f"]]

    def test_preserves_order(self):
        bins = pack_by_weight(range(5), [3, 3, 3, 3, 3], capacity=6)
        flat = [x for b in bins for x in b]
        assert flat == list(range(5))

    def test_oversized_item_gets_own_bin(self):
        bins = pack_by_weight(["big", "small"], [100, 1], capacity=10)
        assert bins == [["big"], ["small"]]

    def test_empty(self):
        assert pack_by_weight([], [], capacity=5) == []

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            pack_by_weight([1], [1], capacity=0)
