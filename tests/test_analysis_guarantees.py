"""Tests for the post-run guarantee monitor (repro.analysis.guarantees)."""

from types import SimpleNamespace

import numpy as np

from repro.analysis import (check_edit_guarantees, check_ulam_guarantees,
                            format_guarantees, machine_budget,
                            reference_distance)
from repro.editdistance import mpc_edit_distance
from repro.mpc import RoundStats, RunStats
from repro.params import UlamParams
from repro.strings import levenshtein
from repro.ulam import mpc_ulam
from repro.workloads.permutations import planted_pair as perm_pair
from repro.workloads.strings import planted_pair as str_pair


class TestReferenceDistance:
    def test_exact_mode(self):
        s, t = "kitten", "sitting"
        ref = reference_distance(s, t, upper_bound=5, factor=2.0)
        assert ref["mode"] == "exact"
        assert ref["distance"] == 3
        assert ref["valid_upper_bound"]

    def test_refutes_overclaimed_upper_bound(self):
        # The claimed "upper bound" 1 is below the true distance 3: the
        # banded DP certifies that, which means a driver bug upstream.
        ref = reference_distance("kitten", "sitting", upper_bound=1,
                                 factor=2.0)
        assert ref["valid_upper_bound"] is False

    def test_refutes_bound_below_length_difference(self):
        ref = reference_distance("aaaa", "aaaaaaaaaa", upper_bound=2,
                                 factor=2.0)
        assert ref["valid_upper_bound"] is False

    def test_lower_bound_mode(self):
        s, t, _ = str_pair(2000, 200, sigma=4, seed=0)
        d = levenshtein(s, t)
        ub = d  # a tight, valid upper bound
        # Cap the work so the exact band (ub+1)*n is unaffordable but
        # the k0 band of factor 4 still fits.
        cap = (d // 2) * 2000
        ref = reference_distance(s, t, upper_bound=ub, factor=4.0,
                                 work_cap=cap)
        assert ref["mode"] == "lower-bound"
        assert ref["valid_upper_bound"]
        # The certificate is d >= lower_bound >= ub/factor.
        assert ref["lower_bound"] <= d
        assert ref["lower_bound"] >= ub / 4.0

    def test_lower_bound_band_may_find_exact(self):
        # If the true distance fits inside the k0 band, the "lower
        # bound" run is actually exact and is reported as such.
        s, t = "abcdef" * 300, "abcdef" * 300
        ref = reference_distance(s, t, upper_bound=1200, factor=4.0,
                                 work_cap=400 * 1800)
        assert ref["mode"] == "exact" and ref["distance"] == 0

    def test_skipped_beyond_work_cap(self):
        s, t, _ = str_pair(1000, 100, sigma=4, seed=1)
        ref = reference_distance(s, t, upper_bound=500, factor=1.5,
                                 work_cap=10)
        assert ref["mode"] == "skipped"
        assert ref["valid_upper_bound"]


class TestMachineBudget:
    def test_polylog_headroom(self):
        # 2 * n^x * log2(n) at n=1024, x=0.5: 2 * 32 * 10 = 640.
        assert machine_budget(1024, 0.5) == 640

    def test_monotone_in_n_and_exponent(self):
        assert machine_budget(4096, 0.4) > machine_budget(1024, 0.4)
        assert machine_budget(1024, 0.6) > machine_budget(1024, 0.4)

    def test_tiny_n_floor(self):
        assert machine_budget(1, 0.5) >= 1


def _ulam_run(n=256, budget=8, x=0.4, eps=0.5, seed=0):
    s, t, _ = perm_pair(n, budget, seed=seed, style="mixed")
    return s, t, mpc_ulam(s, t, x=x, eps=eps, seed=seed)


def _edit_run(n=128, budget=4, x=0.25, eps=1.0, seed=0):
    s, t, _ = str_pair(n, budget, sigma=4, seed=seed)
    return s, t, mpc_edit_distance(s, t, x=x, eps=eps, seed=seed)


class TestUlamGuarantees:
    def test_real_run_passes(self):
        s, t, res = _ulam_run()
        report = check_ulam_guarantees(s, t, res)
        assert report.passed, format_guarantees(report)
        assert {c.name for c in report.checks} == {
            "approximation_ratio", "machine_memory", "machine_count",
            "round_count"}
        assert not any(c.skipped for c in report.checks)

    def test_misparameterised_distance_fails_ratio(self):
        # A run that returns far more than (1+eps) * d — e.g. a chaos
        # run that dropped machines — must fail the ratio check.
        s, t, res = _ulam_run()
        bogus = SimpleNamespace(distance=res.distance * 4,
                                params=res.params, stats=res.stats)
        report = check_ulam_guarantees(s, t, bogus)
        assert not report.passed
        assert [c.name for c in report.failures] == ["approximation_ratio"]

    def test_misparameterised_fleet_fails_machine_count(self):
        # A fleet wider than O~(n^x) — what a wrong partition exponent
        # would produce — must fail the machine-count check.
        s, t, res = _ulam_run()
        budget = machine_budget(res.params.n, res.params.x)
        wide = RoundStats(name="ulam/1-candidates")
        for _ in range(budget + 1):
            wide.observe_machine(input_words=1, output_words=1, work=1)
        bogus = SimpleNamespace(
            distance=res.distance, params=res.params,
            stats=RunStats(rounds=[wide] + list(res.stats.rounds[1:])))
        report = check_ulam_guarantees(s, t, bogus)
        assert [c.name for c in report.failures] == ["machine_count"]

    def test_memory_overrun_fails(self):
        s, t, res = _ulam_run()
        fat = RoundStats(name="ulam/1-candidates")
        fat.observe_machine(input_words=res.params.memory_limit + 1,
                            output_words=1, work=1)
        bogus = SimpleNamespace(
            distance=res.distance, params=res.params,
            stats=RunStats(rounds=[fat]))
        report = check_ulam_guarantees(s, t, bogus)
        assert "machine_memory" in [c.name for c in report.failures]

    def test_extra_round_fails_round_count(self):
        s, t, res = _ulam_run()
        extra = RoundStats(name="ulam/3-oops")
        extra.observe_machine(input_words=1, output_words=1, work=1)
        bogus = SimpleNamespace(
            distance=res.distance, params=res.params,
            stats=RunStats(rounds=list(res.stats.rounds) + [extra]))
        report = check_ulam_guarantees(s, t, bogus)
        assert [c.name for c in report.failures] == ["round_count"]

    def test_work_cap_skips_instead_of_guessing(self):
        s, t, res = _ulam_run()
        report = check_ulam_guarantees(s, t, res, work_cap=1)
        ratio = next(c for c in report.checks
                     if c.name == "approximation_ratio")
        assert ratio.skipped and ratio.passed and ratio.measured is None
        assert report.passed  # skipped is not a failure...

    def test_report_serialises(self):
        s, t, res = _ulam_run()
        doc = check_ulam_guarantees(s, t, res).to_dict()
        assert doc["algorithm"] == "ulam" and doc["passed"] is True
        assert all({"name", "passed", "measured", "bound", "detail",
                    "skipped"} == set(c) for c in doc["checks"])


class TestEditGuarantees:
    def test_real_run_passes(self):
        s, t, res = _edit_run()
        report = check_edit_guarantees(s, t, res)
        assert report.passed, format_guarantees(report)

    def test_ratio_uses_3_plus_eps(self):
        s, t, res = _edit_run(eps=1.0)
        ratio = next(c for c in check_edit_guarantees(s, t, res).checks
                     if c.name == "approximation_ratio")
        assert ratio.bound == 4.0

    def test_misparameterised_distance_fails(self):
        s, t, res = _edit_run()
        exact = levenshtein(s, t)
        bogus = SimpleNamespace(distance=exact * 5, params=res.params,
                                stats=res.stats)
        report = check_edit_guarantees(s, t, bogus)
        assert [c.name for c in report.failures] == ["approximation_ratio"]

    def test_equality_prefix_round_extends_round_budget(self):
        # Identical inputs exercise the ed/0-equality sequential prefix;
        # the round bound is 4 + 1 in that case and the check passes.
        s = np.asarray(str_pair(128, 4, sigma=4, seed=0)[0])
        res = mpc_edit_distance(s, s, x=0.25, eps=1.0, seed=0)
        assert res.distance == 0
        report = check_edit_guarantees(s, s, res)
        rounds = next(c for c in report.checks if c.name == "round_count")
        assert rounds.passed
        if any(r.name == "ed/0-equality" for r in res.stats.rounds):
            assert rounds.bound == 5


class TestFormatGuarantees:
    def test_verdict_lines(self):
        s, t, res = _ulam_run(n=128, budget=4)
        text = format_guarantees(check_ulam_guarantees(s, t, res))
        assert text.startswith("guarantees[ulam]: PASS")
        assert "approximation_ratio" in text
        assert "[  ok]" in text

    def test_failure_marked(self):
        s, t, res = _ulam_run(n=128, budget=4)
        bogus = SimpleNamespace(distance=res.distance * 4,
                                params=res.params, stats=res.stats)
        text = format_guarantees(check_ulam_guarantees(s, t, bogus))
        assert "guarantees[ulam]: FAIL" in text
        assert "[FAIL]" in text


class TestRatioEdgeCases:
    def test_zero_distance_exact_match(self):
        s = np.arange(64)
        res = mpc_ulam(s, s.copy(), x=0.4, eps=0.5)
        report = check_ulam_guarantees(s, s.copy(), res)
        ratio = next(c for c in report.checks
                     if c.name == "approximation_ratio")
        assert ratio.passed and ratio.measured == 1.0

    def test_nonzero_claim_on_equal_inputs_fails(self):
        s = np.arange(64)
        res = mpc_ulam(s, s.copy(), x=0.4, eps=0.5)
        params = UlamParams(n=64, x=0.4, eps=0.5)
        bogus = SimpleNamespace(distance=2, params=params,
                                stats=res.stats)
        report = check_ulam_guarantees(s, s.copy(), bogus)
        ratio = next(c for c in report.checks
                     if c.name == "approximation_ratio")
        assert not ratio.passed
