"""Unit tests for the declarative round-pipeline layer (repro.mpc.plan).

Covers the RoundSpec/Pipeline contract, the shuffle/broadcast ledger
fields, broadcast validation, equality of the broadcast memory charge
with the replicate-into-payload encoding, once-per-round serialisation
of the broadcast blob under a process pool, and drop-mode flow of
``None`` placeholders into collectors.
"""

import pytest

from repro.mpc import (Broadcast, FaultPlan, MPCSimulator, Pipeline,
                       ProcessPoolExecutor, ResilientSimulator,
                       RetryPolicy, RoundProtocolError, RoundSpec,
                       add_work, run_plan, run_stats_from_dict,
                       run_stats_to_dict, sizeof)


def _double(payload):
    return {"v": payload["v"] * 2}


def _sum_with_offset(payload):
    return payload["offset"] + payload["v"]


def _echo(payload):
    return payload


class PickleCounter:
    """Sentinel: counts how often it is serialised (``__reduce__``)."""

    pickles = 0

    def __reduce__(self):
        type(self).pickles += 1
        return (PickleCounter, ())

    def __mpc_size__(self):
        return 1


def _read_sentinel(payload):
    # touching the merged dict proves the broadcast arrived
    assert "sentinel" in payload
    return payload["v"]


class TestPipelineBasics:
    def test_round_partitions_and_collects(self):
        sim = MPCSimulator()
        out = Pipeline(sim).round(RoundSpec(
            "r", _double,
            partitioner=lambda _: [{"v": i} for i in range(4)],
            collector=lambda outs, _: sum(o["v"] for o in outs)))
        assert out == 2 * (0 + 1 + 2 + 3)
        assert sim.stats.rounds[0].machines == 4

    def test_run_threads_state_between_specs(self):
        sim = MPCSimulator()
        final = run_plan(sim, [
            RoundSpec("a", _double,
                      partitioner=lambda _: [{"v": 3}],
                      collector=lambda outs, _: outs[0]["v"]),
            RoundSpec("b", _double,
                      partitioner=lambda v: [{"v": v}],
                      collector=lambda outs, _: outs[0]["v"]),
        ])
        assert final == 12
        assert [r.name for r in sim.stats.rounds] == ["a", "b"]

    def test_no_collector_passes_raw_outputs(self):
        sim = MPCSimulator()
        outs = Pipeline(sim).round(RoundSpec(
            "r", _double, partitioner=lambda _: [{"v": 1}, {"v": 2}]))
        assert outs == [{"v": 2}, {"v": 4}]
        assert sim.stats.rounds[0].shuffle_words == 0

    def test_collector_receives_previous_state(self):
        sim = MPCSimulator()
        got = {}
        Pipeline(sim).round(RoundSpec(
            "r", _double, partitioner=lambda s: [{"v": s}],
            collector=lambda outs, state: got.setdefault("state", state)),
            7)
        assert got["state"] == 7


class TestShuffleAccounting:
    def test_collector_volume_and_work_charged_to_round(self):
        def collector(outs, _):
            add_work(123)
            return [o["v"] for o in outs]

        sim = MPCSimulator()
        state = Pipeline(sim).round(RoundSpec(
            "r", _double,
            partitioner=lambda _: [{"v": i} for i in range(3)],
            collector=collector))
        r = sim.stats.rounds[0]
        assert r.shuffle_words == sizeof(state)
        assert r.shuffle_work == 123
        # collector work stays out of machine-compute totals
        assert sim.stats.shuffle_work == 123
        assert sim.stats.total_work == r.total_work

    def test_summary_gains_communication_block_only_when_active(self):
        sim = MPCSimulator()
        sim.run_round("legacy", _double, [{"v": 1}])
        assert "shuffle_words" not in sim.stats.summary()
        Pipeline(sim).round(RoundSpec(
            "piped", _double, partitioner=lambda _: [{"v": 1}],
            collector=lambda outs, _: outs))
        summary = sim.stats.summary()
        assert summary["shuffle_words"] == sim.stats.shuffle_words > 0

    def test_trace_round_trips_shuffle_fields(self):
        sim = MPCSimulator()
        Pipeline(sim).round(RoundSpec(
            "r", _double,
            partitioner=lambda _: [{"v": 1}],
            broadcast={"offset": 1},
            collector=lambda outs, _: outs))
        loaded = run_stats_from_dict(run_stats_to_dict(sim.stats))
        r0, l0 = sim.stats.rounds[0], loaded.rounds[0]
        assert (l0.shuffle_words, l0.shuffle_work, l0.broadcast_words) == \
            (r0.shuffle_words, r0.shuffle_work, r0.broadcast_words)

    def test_merge_combines_shuffle_and_broadcast(self):
        a, b = MPCSimulator(), MPCSimulator()
        for sim in (a, b):
            Pipeline(sim).round(RoundSpec(
                "r", _double, partitioner=lambda _: [{"v": 1}],
                broadcast={"offset": 2},
                collector=lambda outs, _: outs))
        merged = a.stats.merge(b.stats).rounds[0]
        one = a.stats.rounds[0]
        assert merged.shuffle_words == 2 * one.shuffle_words
        assert merged.broadcast_words == one.broadcast_words  # max, not sum


class TestBroadcast:
    def test_machine_sees_merged_dict(self):
        sim = MPCSimulator()
        outs = Pipeline(sim).round(RoundSpec(
            "r", _sum_with_offset,
            partitioner=lambda _: [{"v": 1}, {"v": 2}],
            broadcast={"offset": 10}))
        assert outs == [11, 12]

    def test_callable_broadcast_receives_state(self):
        sim = MPCSimulator()
        outs = Pipeline(sim).round(RoundSpec(
            "r", _sum_with_offset,
            partitioner=lambda s: [{"v": s}],
            broadcast=lambda s: {"offset": 100 * s}), 2)
        assert outs == [202]

    def test_memory_charge_matches_replicated_encoding(self):
        blob = {"offset": 10, "table": list(range(7))}
        a = MPCSimulator()
        a.run_round("r", _echo, [{"v": 1, **blob}, {"v": 2, **blob}])
        b = MPCSimulator()
        b.run_round("r", _echo, [{"v": 1}, {"v": 2}], broadcast=blob)
        ra, rb = a.stats.rounds[0], b.stats.rounds[0]
        assert (rb.max_input_words, rb.total_input_words) == \
            (ra.max_input_words, ra.total_input_words)
        assert rb.broadcast_words == sizeof(blob) - 1
        assert ra.broadcast_words == 0

    def test_non_dict_broadcast_rejected(self):
        sim = MPCSimulator()
        with pytest.raises(RoundProtocolError, match="must be a dict"):
            sim.run_round("r", _echo, [{"v": 1}], broadcast=[1, 2])

    def test_non_dict_payload_rejected_in_broadcast_round(self):
        sim = MPCSimulator()
        with pytest.raises(RoundProtocolError, match="dict payloads"):
            sim.run_round("r", _echo, [[1]], broadcast={"k": 1})

    def test_key_clash_rejected(self):
        sim = MPCSimulator()
        with pytest.raises(RoundProtocolError, match="shadows"):
            sim.run_round("r", _echo, [{"offset": 1}],
                          broadcast={"offset": 10})

    def test_memory_limit_counts_broadcast(self):
        from repro.mpc import MemoryLimitExceeded
        blob = {"table": list(range(50))}
        sim = MPCSimulator(memory_limit=40)
        with pytest.raises(MemoryLimitExceeded):
            sim.run_round("r", _echo, [{"v": 1}], broadcast=blob)

    def test_serial_executor_never_pickles_blob(self):
        PickleCounter.pickles = 0
        sim = MPCSimulator()
        sim.run_round("r", _read_sentinel,
                      [{"v": i} for i in range(4)],
                      broadcast={"sentinel": PickleCounter()})
        assert PickleCounter.pickles == 0

    def test_process_pool_serialises_blob_once_per_round(self):
        # The counting sentinel's __reduce__ runs exactly once even with
        # more machines than workers: Broadcast.pickled() memoises the
        # bytes and workers receive the same serialisation per batch.
        PickleCounter.pickles = 0
        with ProcessPoolExecutor(max_workers=2) as pool:
            sim = MPCSimulator(executor=pool)
            outs = sim.run_round(
                "r", _read_sentinel, [{"v": i} for i in range(8)],
                broadcast={"sentinel": PickleCounter()})
        assert outs == list(range(8))
        assert PickleCounter.pickles == 1

    def test_broadcast_wrapper_memoises_pickle(self):
        PickleCounter.pickles = 0
        blob = Broadcast({"sentinel": PickleCounter()})
        a = blob.pickled()
        b = blob.pickled()
        assert a is b
        assert PickleCounter.pickles == 1


class TestPipelineUnderChaos:
    def test_drop_placeholders_flow_into_collector(self):
        sim = ResilientSimulator(
            fault_plan=FaultPlan(crash=0.5, seed=3),
            retry_policy=RetryPolicy(max_attempts=1),
            on_exhausted="drop")
        seen = {}

        def collector(outs, _):
            seen["n_none"] = sum(1 for o in outs if o is None)
            return [o["v"] for o in outs if o is not None]

        state = Pipeline(sim).round(RoundSpec(
            "r", _double,
            partitioner=lambda _: [{"v": i} for i in range(20)],
            collector=collector))
        assert seen["n_none"] > 0
        assert seen["n_none"] == sim.stats.rounds[0].dropped_machines
        assert len(state) == 20 - seen["n_none"]
        assert sim.stats.rounds[0].shuffle_words == sizeof(state)

    def test_broadcast_round_survives_retries(self):
        sim = ResilientSimulator(
            fault_plan=FaultPlan(crash=0.3, seed=5),
            retry_policy=RetryPolicy(max_attempts=4))
        outs = Pipeline(sim).round(RoundSpec(
            "r", _sum_with_offset,
            partitioner=lambda _: [{"v": i} for i in range(12)],
            broadcast={"offset": 5}))
        assert outs == [5 + i for i in range(12)]
        assert sim.stats.rounds[0].retried_machines > 0
        assert sim.stats.rounds[0].broadcast_words == sizeof(
            {"offset": 5}) - 1


class TestStatsSnapshot:
    def test_snapshot_detaches_from_simulator(self):
        sim = MPCSimulator()
        sim.run_round("a", _double, [{"v": 1}])
        snap = sim.stats.snapshot()
        sim.run_round("b", _double, [{"v": 1}])
        assert snap.n_rounds == 1
        assert sim.stats.n_rounds == 2
        # deep: mutating the live round must not leak into the snapshot
        sim.stats.rounds[0].total_work += 99
        assert snap.rounds[0].total_work != sim.stats.rounds[0].total_work
