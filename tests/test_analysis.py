"""Unit tests for scaling fits and report rendering."""

import numpy as np
import pytest

from repro.analysis import fit_power_law, format_kv, format_table


class TestFitPowerLaw:
    def test_recovers_exact_exponent(self):
        ns = [64, 128, 256, 512]
        values = [3.0 * n ** 1.5 for n in ns]
        fit = fit_power_law(ns, values)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_data_close_exponent(self):
        rng = np.random.default_rng(1)
        ns = [2 ** k for k in range(6, 14)]
        values = [2.0 * n ** 0.8 * np.exp(rng.normal(0, 0.05)) for n in ns]
        fit = fit_power_law(ns, values)
        assert abs(fit.exponent - 0.8) < 0.1
        assert fit.r_squared > 0.95

    def test_predict(self):
        fit = fit_power_law([10, 100], [10, 100])
        assert fit.predict(1000) == pytest.approx(1000)

    def test_constant_data_zero_exponent(self):
        fit = fit_power_law([10, 100, 1000], [5, 5, 5])
        assert fit.exponent == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_power_law([10], [1])
        with pytest.raises(ValueError):
            fit_power_law([10, 20], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([10, 10], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([10, 20, 30], [1, 2])


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "v"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_float_formatting(self):
        out = format_table(["v"], [[1234567.0], [0.001], [3.14159]])
        assert "1.23e+06" in out
        assert "0.001" in out
        assert "3.142" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestFormatKv:
    def test_contains_title_and_pairs(self):
        out = format_kv("Summary", {"rounds": 2, "machines": 16})
        assert out.splitlines()[0] == "Summary"
        assert "rounds" in out and "16" in out
