"""Unit tests for the exact edit-distance kernels."""

import numpy as np
import pytest

from repro.strings import (hamming, levenshtein, levenshtein_last_row,
                           levenshtein_script)
from repro.mpc import WorkMeter

from .helpers import brute_edit_distance


class TestKnownValues:
    def test_paper_example(self):
        # §2 of the paper: ed("elephant", "relevant") = 3
        assert levenshtein("elephant", "relevant") == 3

    def test_identity(self):
        assert levenshtein("kitten", "kitten") == 0

    def test_classic_kitten_sitting(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_vs_empty(self):
        assert levenshtein("", "") == 0

    def test_empty_vs_nonempty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_single_substitution(self):
        assert levenshtein([1, 2, 3], [1, 9, 3]) == 1

    def test_disjoint_alphabets(self):
        assert levenshtein([1, 2, 3], [4, 5, 6]) == 3


class TestAgainstBruteForce:
    def test_random_small_strings(self, rng):
        for _ in range(150):
            m, n = rng.integers(0, 11, 2)
            a = rng.integers(0, 4, m).tolist()
            b = rng.integers(0, 4, n).tolist()
            assert levenshtein(a, b) == brute_edit_distance(a, b)

    def test_binary_alphabet(self, rng):
        for _ in range(50):
            a = rng.integers(0, 2, 9).tolist()
            b = rng.integers(0, 2, 9).tolist()
            assert levenshtein(a, b) == brute_edit_distance(a, b)


class TestLastRow:
    def test_row_entries_are_prefix_distances(self, rng):
        a = rng.integers(0, 3, 6).tolist()
        b = rng.integers(0, 3, 8).tolist()
        row = levenshtein_last_row(a, b)
        for j in range(len(b) + 1):
            assert row[j] == brute_edit_distance(a, b[:j])

    def test_empty_pattern_row(self):
        row = levenshtein_last_row([], [1, 2, 3])
        assert row.tolist() == [0, 1, 2, 3]


class TestScript:
    def test_script_length_equals_distance(self, rng):
        for _ in range(30):
            a = rng.integers(0, 4, int(rng.integers(0, 9))).tolist()
            b = rng.integers(0, 4, int(rng.integers(0, 9))).tolist()
            d, ops = levenshtein_script(a, b)
            assert d == brute_edit_distance(a, b)
            assert len(ops) == d

    def test_script_replays_to_target(self, rng):
        for _ in range(30):
            a = rng.integers(0, 4, int(rng.integers(0, 9))).tolist()
            b = rng.integers(0, 4, int(rng.integers(0, 9))).tolist()
            _, ops = levenshtein_script(a, b)
            out = list(a)
            shift = 0  # tracks index displacement caused by indels
            for kind, i, j in ops:
                if kind == "substitute":
                    out[i + shift] = b[j]
                elif kind == "delete":
                    del out[i + shift]
                    shift -= 1
                else:  # insert
                    out.insert(i + shift, b[j])
                    shift += 1
            assert out == list(b)


class TestHamming:
    def test_counts_mismatches(self):
        assert hamming([1, 2, 3], [1, 0, 3]) == 1

    def test_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            hamming([1], [1, 2])

    def test_upper_bounds_levenshtein(self, rng):
        for _ in range(30):
            a = rng.integers(0, 3, 8).tolist()
            b = rng.integers(0, 3, 8).tolist()
            assert levenshtein(a, b) <= hamming(a, b)


class TestWorkAccounting:
    def test_levenshtein_charges_quadratic_work(self):
        with WorkMeter() as m:
            levenshtein(list(range(10)), list(range(20)))
        assert m.total >= 200


class TestInputValidation:
    def test_rejects_2d_arrays(self):
        with pytest.raises(ValueError):
            levenshtein(np.zeros((2, 2), dtype=np.int64), [1])

    def test_rejects_float_arrays(self):
        with pytest.raises(TypeError):
            levenshtein(np.array([1.5]), [1])

    def test_unicode_round_trip(self):
        assert levenshtein("naïve", "naive") == 1
