"""Public-API quality gates: exports resolve, everything is documented.

These tests are what keeps the "documented public API" deliverable true
over time: every name in an ``__all__`` must resolve and carry a
docstring, and the experiment index in the docs must match the benchmark
modules that actually exist.
"""

import importlib
import inspect
import pathlib
import re

import pytest

PACKAGES = [
    "repro",
    "repro.mpc",
    "repro.strings",
    "repro.ulam",
    "repro.editdistance",
    "repro.baselines",
    "repro.workloads",
    "repro.analysis",
    "repro.extensions",
    "repro.service",
]

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestExports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_exports_resolve(self, name):
        mod = importlib.import_module(name)
        assert hasattr(mod, "__all__"), name
        for symbol in mod.__all__:
            assert hasattr(mod, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_module_docstrings(self, name):
        mod = importlib.import_module(name)
        assert mod.__doc__ and mod.__doc__.strip(), name

    @pytest.mark.parametrize("name", PACKAGES)
    def test_public_callables_documented(self, name):
        mod = importlib.import_module(name)
        undocumented = []
        for symbol in mod.__all__:
            obj = getattr(mod, symbol)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(symbol)
        assert not undocumented, f"{name}: {undocumented}"

    def test_version_string(self):
        import repro
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)


class TestDocsConsistency:
    def test_every_bench_module_listed_in_design(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        bench_dir = REPO_ROOT / "benchmarks"
        missing = [p.name for p in bench_dir.glob("bench_*.py")
                   if p.name not in design]
        assert not missing, f"DESIGN.md experiment index missing {missing}"

    def test_every_experiment_id_in_experiments_md(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        design = (REPO_ROOT / "DESIGN.md").read_text()
        ids = set(re.findall(r"\bE\d+\b", design))
        missing = [e for e in sorted(ids, key=lambda x: int(x[1:]))
                   if f"## {e} " not in experiments
                   and f"{e} —" not in experiments]
        assert not missing, f"EXPERIMENTS.md missing sections: {missing}"

    def test_examples_exist_and_have_mains(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 4
        for ex in examples:
            text = ex.read_text()
            assert '__main__' in text, ex.name
            assert text.lstrip().startswith(('#!', '"""')), ex.name

    def test_readme_mentions_both_theorems(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "Theorem 4" in readme or "Thm 4" in readme
        assert "Theorem 9" in readme or "Thm 9" in readme


class TestSignatureStability:
    """Smoke contracts on the two headline entry points."""

    def test_mpc_ulam_signature(self):
        import repro
        sig = inspect.signature(repro.mpc_ulam)
        for p in ("s", "t", "x", "eps", "sim", "config", "seed"):
            assert p in sig.parameters

    def test_mpc_edit_distance_signature(self):
        import repro
        sig = inspect.signature(repro.mpc_edit_distance)
        for p in ("s", "t", "x", "eps", "sim", "config", "seed"):
            assert p in sig.parameters

    def test_results_expose_summary(self):
        import repro
        for cls in (repro.UlamResult, repro.EditResult, repro.LcsResult):
            assert callable(getattr(cls, "summary"))
