"""The CI boundary check itself, run as a test: no driver or benchmark
may call ``sim.run_round`` directly — rounds go through repro.mpc.plan —
and telemetry sinks are constructed only inside repro/mpc and the CLI."""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_no_direct_run_round_outside_mpc_package():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_api_boundary.py"),
         str(ROOT)],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_checker_flags_a_violation(tmp_path):
    bad = tmp_path / "src" / "repro" / "ulam"
    bad.mkdir(parents=True)
    (bad / "rogue.py").write_text(
        "def f(sim):\n    return sim.run_round('r', id, [])\n")
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_api_boundary.py"),
         str(tmp_path)],
        capture_output=True, text=True)
    assert proc.returncode == 1
    assert "rogue.py:2" in proc.stdout


def _check(root):
    return subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_api_boundary.py"),
         str(root)],
        capture_output=True, text=True)


def test_checker_flags_sink_construction_outside_mpc(tmp_path):
    bad = tmp_path / "benchmarks"
    bad.mkdir(parents=True)
    (bad / "rogue_bench.py").write_text(
        "from repro.mpc import JsonlSink\n"
        "sink = JsonlSink('trace.jsonl')\n")
    proc = _check(tmp_path)
    assert proc.returncode == 1
    assert "rogue_bench.py:2" in proc.stdout
    assert "sink" in proc.stdout
    assert "Tracer.to_jsonl" in proc.stdout      # the fix hint


def test_checker_allows_sink_construction_in_cli_and_mpc(tmp_path):
    cli = tmp_path / "src" / "repro"
    cli.mkdir(parents=True)
    (cli / "cli.py").write_text("sink = InMemorySink()\n")
    mpc = cli / "mpc"
    mpc.mkdir()
    (mpc / "telemetry.py").write_text("sink = JsonlSink('t')\n")
    proc = _check(tmp_path)
    assert proc.returncode == 0, proc.stdout


def test_checker_ignores_commented_calls(tmp_path):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "driver.py").write_text(
        "# sim.run_round('r', id, [])  historical note\n"
        "# JsonlSink('t')\n")
    proc = _check(tmp_path)
    assert proc.returncode == 0, proc.stdout


def test_checker_flags_metrics_mutation_outside_repro(tmp_path):
    bad = tmp_path / "tests"
    bad.mkdir(parents=True)
    (bad / "test_rogue.py").write_text(
        "from repro.metrics import get_registry\n"
        "get_registry().counter('sneaky').inc()\n")
    proc = _check(tmp_path)
    assert proc.returncode == 1
    assert "test_rogue.py:2" in proc.stdout
    assert "metrics" in proc.stdout
    assert "snapshot" in proc.stdout             # the fix hint


def test_checker_allows_metrics_mutation_in_repro_and_own_tests(tmp_path):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "kernel.py").write_text(
        "_M = get_registry().counter('dp.cells')\n")
    tests = tmp_path / "tests"
    tests.mkdir()
    (tests / "test_metrics.py").write_text(
        "c = reg.counter('c')\n"
        "g = reg.gauge('g')\n"
        "h = reg.histogram('h')\n")
    proc = _check(tmp_path)
    assert proc.returncode == 0, proc.stdout


def test_checker_flags_metrics_mutation_in_benchmarks(tmp_path):
    bench = tmp_path / "benchmarks"
    bench.mkdir(parents=True)
    (bench / "bench_rogue.py").write_text(
        "reg.histogram('lat', phase='x').observe(1)\n")
    proc = _check(tmp_path)
    assert proc.returncode == 1
    assert "bench_rogue.py:1" in proc.stdout


def test_checker_flags_kernel_probe_outside_repro(tmp_path):
    bad = tmp_path / "examples"
    bad.mkdir(parents=True)
    (bad / "rogue_probe.py").write_text(
        "from repro.obs.profile import kernel_probe\n"
        "_P = kernel_probe('sneaky')\n")
    proc = _check(tmp_path)
    assert proc.returncode == 1
    assert "rogue_probe.py:2" in proc.stdout
    assert "kernel-probe" in proc.stdout
    assert "profile_rows" in proc.stdout         # the fix hint


def test_checker_allows_kernel_probe_in_repro_and_own_tests(tmp_path):
    src = tmp_path / "src" / "repro" / "strings"
    src.mkdir(parents=True)
    (src / "banded.py").write_text(
        "_PROBE = kernel_probe('banded')\n")
    tests = tmp_path / "tests"
    tests.mkdir()
    (tests / "test_obs_profile.py").write_text(
        "probe = kernel_probe('demo')\n")
    proc = _check(tmp_path)
    assert proc.returncode == 0, proc.stdout


def test_checker_flags_raw_shared_memory_outside_mpc(tmp_path):
    bad = tmp_path / "src" / "repro" / "ulam"
    bad.mkdir(parents=True)
    (bad / "rogue.py").write_text(
        "from multiprocessing import shared_memory\n"
        "seg = shared_memory.SharedMemory(create=True, size=8)\n")
    proc = _check(tmp_path)
    assert proc.returncode == 1
    assert "rogue.py:1" in proc.stdout
    assert "rogue.py:2" in proc.stdout
    assert "DataPlane" in proc.stdout            # the fix hint


def test_checker_allows_shared_memory_in_mpc_package(tmp_path):
    mpc = tmp_path / "src" / "repro" / "mpc"
    mpc.mkdir(parents=True)
    (mpc / "shm.py").write_text(
        "from multiprocessing import shared_memory\n"
        "seg = shared_memory.SharedMemory(create=True, size=8)\n")
    proc = _check(tmp_path)
    assert proc.returncode == 0, proc.stdout
