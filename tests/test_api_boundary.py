"""The CI boundary check itself, run as a test: no driver or benchmark
may call ``sim.run_round`` directly — rounds go through repro.mpc.plan."""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_no_direct_run_round_outside_mpc_package():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_api_boundary.py"),
         str(ROOT)],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_checker_flags_a_violation(tmp_path):
    bad = tmp_path / "src" / "repro" / "ulam"
    bad.mkdir(parents=True)
    (bad / "rogue.py").write_text(
        "def f(sim):\n    return sim.run_round('r', id, [])\n")
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_api_boundary.py"),
         str(tmp_path)],
        capture_output=True, text=True)
    assert proc.returncode == 1
    assert "rogue.py:2" in proc.stdout
