"""Kernel-attribution profiler: probes, flame export, differential gate.

The acceptance bar of the profiling layer: a run made with profiling on
carries per-(round, kernel) wall-clock attribution in its summary (and
therefore its history record), the collapsed-stack exporters turn that
attribution into Brendan-Gregg flamegraph input, and — the point of the
whole layer — when one strings kernel is deliberately slowed
(:class:`repro.obs.profile.inject_slowdown`), ``repro profdiff`` ranks
exactly that kernel as the top wall-clock delta and a failing
``tools/check_regression.py`` run *names* it.
"""

import json
import pathlib
import subprocess
import sys
import time

from repro.engines import EngineRequest, get_engine
from repro.mpc.telemetry import Span
from repro.obs import profile
from repro.obs.profile import (collect_profile, diff_profiles, enabled,
                               flame_from_record, flame_from_spans,
                               format_profile_diff, global_profile,
                               hot_kernels, inject_slowdown, kernel_probe,
                               merge_profile, reset_global_profile,
                               totals_from_record, totals_from_spans,
                               write_collapsed)
from repro.registry import make_record, record_profile
from repro.workloads.permutations import planted_pair

ROOT = pathlib.Path(__file__).resolve().parent.parent

N = 128
SEED = 3


def _spin(probe, cells=10):
    t0 = probe.begin()
    time.sleep(1e-4)
    probe.end(t0, cells)


class TestKernelProbe:
    def test_disabled_probe_is_inert(self):
        probe = kernel_probe("demo")
        assert probe.begin() == -1.0
        with collect_profile() as prof:
            _spin(probe)
        assert prof.data is None  # nothing to ship over the pool

    def test_enabled_probe_charges_all_active_collectors(self):
        probe = kernel_probe("demo")
        with enabled(), collect_profile() as outer:
            _spin(probe, cells=10)
            with collect_profile() as inner:
                _spin(probe, cells=7)
        calls, cells, seconds = outer.data["demo"]
        assert (calls, cells) == (2, 17)
        assert seconds >= 2e-4
        assert inner.data["demo"][0] == 1
        assert inner.data["demo"][1] == 7

    def test_merge_profile_sums_per_kernel(self):
        into = {"a": [1, 10, 0.5]}
        merge_profile(into, {"a": [2, 5, 0.25], "b": [1, 1, 0.125]})
        assert into == {"a": [3, 15, 0.75], "b": [1, 1, 0.125]}

    def test_inject_slowdown_is_observed_then_restored(self):
        probe = kernel_probe("victim")
        bystander = kernel_probe("bystander")
        with enabled(), collect_profile() as prof:
            with inject_slowdown("victim", 0.05):
                t0 = probe.begin()
                probe.end(t0, 1)
                t0 = bystander.begin()
                bystander.end(t0, 1)
            t0 = probe.begin()
            probe.end(t0, 1)
        assert prof.data["victim"][2] >= 0.05
        assert prof.data["bystander"][2] < 0.05
        # After the context exits, the second victim call is fast again.
        assert prof.data["victim"][2] < 0.10

    def test_global_aggregate_folds_and_caps_queries(self):
        reset_global_profile()
        profile.fold_global({"k": [1, 5, 0.5]}, "svc1-q1", 1)
        profile.fold_global({"k": [1, 5, 0.5]}, "svc1-q2", 2)
        profile.fold_global({"k": [2, 2, 0.25]})  # uncorrelated
        snap = global_profile()
        assert snap["kernels"]["k"] == {"calls": 4, "cells": 12,
                                        "seconds": 1.25}
        assert set(snap["queries"]) == {"1:svc1-q1", "2:svc1-q2"}
        reset_global_profile()
        assert global_profile()["kernels"] == {}


def _ulam_record(n=N, seed=SEED):
    """One in-process ulam-mpc run -> (EngineResult, history record)."""
    budget = n // 16
    s, t, _ = planted_pair(n, budget, seed=seed, style="mixed")
    engine = get_engine("ulam-mpc")
    eres = engine.solve(EngineRequest(distance="ulam", s=s, t=t,
                                      seed=seed))
    summary = {"distance": eres.distance, **eres.stats.summary()}
    params = {"n": n, "x": eres.params.get("x"),
              "eps": eres.params.get("eps"), "seed": seed,
              "budget": budget}
    record = make_record("ulam", params, summary, engine=eres.engine)
    return eres, json.loads(json.dumps(record))  # as read from history


class TestRunAttribution:
    def test_profile_rows_ride_summary_and_global_aggregate(self):
        reset_global_profile()
        with enabled():
            eres, record = _ulam_record()
        rows = eres.stats.profile_rows()
        assert rows, "profiled run produced no kernel attribution"
        by_kernel = {r["kernel"] for r in rows}
        assert "ulam_sparse" in by_kernel
        for row in rows:
            assert row["calls"] > 0 and row["cells"] > 0
            assert row["seconds"] > 0
            assert 1 <= row["machines"]
            assert 0 < row["max_seconds"] <= row["seconds"] + 1e-9
            assert row["max_machine"] >= 0
        # The JSON round-tripped history record carries the same rows.
        assert record_profile(record) == json.loads(json.dumps(rows))
        # The process-global aggregate saw the same cells.
        snap = global_profile()["kernels"]
        sparse_cells = sum(r["cells"] for r in rows
                           if r["kernel"] == "ulam_sparse")
        assert snap["ulam_sparse"]["cells"] == sparse_cells

    def test_disabled_run_leaves_no_profile_block(self):
        eres, record = _ulam_record()
        assert not eres.stats.profile_active
        assert "profile" not in eres.stats.summary()
        assert record_profile(record) == []

    def test_profiled_ledger_matches_unprofiled_run(self):
        plain, _ = _ulam_record()
        with enabled():
            profiled, _ = _ulam_record()
        assert profiled.distance == plain.distance
        a = plain.stats.summary()
        b = profiled.stats.summary()
        b.pop("profile")
        a.pop("wall_seconds", None)
        b.pop("wall_seconds", None)
        assert a == b  # observation does not perturb the ledger


class TestFlameExport:
    RECORD = {"engine": "ulam-mpc", "command": "ulam",
              "summary": {"profile": [
                  {"round": "ulam/1-candidates", "kernel": "ulam_sparse",
                   "calls": 4, "cells": 100, "seconds": 0.25},
                  {"round": "ulam/1-candidates", "kernel": "lis",
                   "calls": 1, "cells": 10, "seconds": 0.001},
                  {"round": "ulam/2-verify", "kernel": "ulam_sparse",
                   "calls": 2, "cells": 50, "seconds": 0.5}]}}

    def test_flame_from_record_folds_round_kernel_frames(self):
        lines = flame_from_record(self.RECORD)
        assert lines == [
            "ulam-mpc;ulam/1-candidates;ulam_sparse 250000",
            "ulam-mpc;ulam/1-candidates;lis 1000",
            "ulam-mpc;ulam/2-verify;ulam_sparse 500000"]
        by_cells = flame_from_record(self.RECORD, weight="cells")
        assert "ulam-mpc;ulam/1-candidates;ulam_sparse 100" in by_cells

    def test_flame_from_spans_keeps_machine_frames(self):
        spans = [
            Span(kind="run", name="ulam", start=0.0, end=1.0),
            Span(kind="machine", name="ulam/1", machine=2, start=0.0,
                 end=0.5, profile={"ulam_sparse": [3, 40, 0.125]}),
            Span(kind="machine", name="ulam/1", machine=2, start=0.5,
                 end=0.9, profile={"ulam_sparse": [1, 10, 0.125]}),
            Span(kind="machine", name="ulam/1", machine=0, start=0.0,
                 end=0.2),  # unprofiled machines contribute no frame
        ]
        assert flame_from_spans(spans) == [
            "ulam;ulam/1;machine[2];ulam_sparse 250000"]
        assert flame_from_spans(spans, weight="cells") == [
            "ulam;ulam/1;machine[2];ulam_sparse 50"]

    def test_write_collapsed_roundtrip(self, tmp_path):
        out = tmp_path / "prof.folded"
        write_collapsed(["a;b 1", "a;c 2"], out)
        assert out.read_text() == "a;b 1\na;c 2\n"
        write_collapsed([], out)
        assert out.read_text() == ""


class TestDifferentialProfiler:
    A = {"fast": {"calls": 10, "cells": 100, "seconds": 1.0},
         "gone": {"calls": 1, "cells": 5, "seconds": 0.3}}
    B = {"fast": {"calls": 10, "cells": 100, "seconds": 1.1},
         "slow": {"calls": 20, "cells": 400, "seconds": 3.0}}

    def test_rows_ranked_by_absolute_delta(self):
        rows = diff_profiles(self.A, self.B, by="seconds")
        assert [r["kernel"] for r in rows] == ["slow", "gone", "fast"]
        slow = rows[0]
        assert slow["a_seconds"] == 0 and slow["b_seconds"] == 3.0
        assert slow["delta_seconds"] == 3.0
        assert slow["change"] is None  # new kernel: no baseline
        fast = rows[-1]
        assert abs(fast["change"] - 0.1) < 1e-9

    def test_rank_by_cells_is_deterministic(self):
        rows = diff_profiles(self.A, self.B, by="cells")
        assert rows[0]["kernel"] == "slow"
        assert rows[0]["delta_cells"] == 400

    def test_format_names_kernels(self):
        text = format_profile_diff(
            diff_profiles(self.A, self.B), top=2)
        assert "slow" in text and "gone" in text
        assert "fast" not in text  # beyond top

    def test_hot_kernels_shares(self):
        ranked = hot_kernels(self.B, by="seconds", top=2)
        assert ranked[0][0] == "slow"
        assert abs(ranked[0][2] - 3.0 / 4.1) < 1e-9
        assert len(ranked) == 2

    def test_totals_from_spans_and_record_agree(self):
        spans = [Span(kind="machine", name="r", machine=0, start=0.0,
                      end=1.0, profile={"k": [2, 10, 0.5]}),
                 Span(kind="machine", name="r", machine=1, start=0.0,
                      end=1.0, profile={"k": [1, 5, 0.25]})]
        record = {"summary": {"profile": [
            {"round": "r", "kernel": "k", "calls": 3, "cells": 15,
             "seconds": 0.75}]}}
        assert totals_from_spans(spans) == totals_from_record(record)


class TestRegressionAttribution:
    """The issue's acceptance scenario: slow one kernel, convict it."""

    def _regressed_pair(self, monkeypatch):
        with enabled():
            _, rec_a = _ulam_record()
            import repro.ulam.candidates as cand
            real = cand.ulam_auto

            def doubled(*args, **kwargs):
                real(*args, **kwargs)
                return real(*args, **kwargs)

            real_batch = cand.ulam_auto_batch

            def doubled_batch(jobs):
                real_batch(jobs)
                return real_batch(jobs)

            # Double every candidate evaluation — scalar and batched
            # dispatch alike (regressing the gated total_work) — and
            # slow the sparse kernel so the wall-clock delta is
            # unmistakably its own.
            monkeypatch.setattr(cand, "ulam_auto", doubled)
            monkeypatch.setattr(cand, "ulam_auto_batch", doubled_batch)
            with inject_slowdown("ulam_sparse", 2e-5):
                _, rec_b = _ulam_record()
        return rec_a, rec_b

    def test_profdiff_and_failing_gate_name_the_slowed_kernel(
            self, tmp_path, monkeypatch, capsys):
        rec_a, rec_b = self._regressed_pair(monkeypatch)

        # The doubled kernel calls regress the gated work metric...
        assert rec_b["summary"]["total_work"] \
            > rec_a["summary"]["total_work"] * 1.15

        # ...and the differential profiler convicts ulam_sparse.
        rows = diff_profiles(totals_from_record(rec_a),
                             totals_from_record(rec_b), by="seconds")
        assert rows[0]["kernel"] == "ulam_sparse"
        assert rows[0]["delta_seconds"] > 0
        assert rows[0]["delta_calls"] > 0

        base_file = tmp_path / "baseline.json"
        fresh_file = tmp_path / "fresh.jsonl"
        base_file.write_text(json.dumps([rec_a]))
        fresh_file.write_text(json.dumps(rec_b, sort_keys=True) + "\n")

        # `repro profdiff A B` ranks the slowed kernel first.
        from repro.cli import main
        assert main(["profdiff", str(base_file), str(fresh_file)]) == 0
        out = capsys.readouterr().out
        assert "hottest regression: ulam_sparse" in out

        # A failing check_regression run prints the same conviction.
        proc = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "check_regression.py"),
             "--baseline", str(base_file), "--record", str(fresh_file)],
            capture_output=True, text=True, cwd=str(ROOT), timeout=300)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "REGRESSED" in proc.stdout
        assert "responsible kernels" in proc.stdout
        tail = proc.stdout.split("responsible kernels", 1)[1].splitlines()
        # tail[1] is the table header; tail[2] the hottest delta row.
        assert "ulam_sparse" in tail[2]

    def test_repro_compare_prints_attribution_on_regression(
            self, tmp_path, monkeypatch, capsys):
        rec_a, rec_b = self._regressed_pair(monkeypatch)
        base_file = tmp_path / "baseline.json"
        history = tmp_path / "history.jsonl"
        base_file.write_text(json.dumps([rec_a]))
        history.write_text(json.dumps(rec_b, sort_keys=True) + "\n")
        from repro.cli import main
        code = main(["compare", "--baseline", str(base_file),
                     "--history", str(history)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSED" in out
        assert "kernel attribution (hottest delta: ulam_sparse)" in out


class TestProfileCLI:
    def test_profile_subcommand_renders_record_and_flame(
            self, tmp_path, capsys):
        with enabled():
            _, record = _ulam_record()
        rec_file = tmp_path / "run.jsonl"
        rec_file.write_text(json.dumps(record, sort_keys=True) + "\n")
        flame = tmp_path / "run.folded"
        from repro.cli import main
        assert main(["profile", str(rec_file),
                     "--flame", str(flame)]) == 0
        out = capsys.readouterr().out
        assert "ulam_sparse" in out
        lines = flame.read_text().splitlines()
        assert lines
        for line in lines:
            frames, value = line.rsplit(" ", 1)
            assert frames.startswith("ulam-mpc;")
            assert int(value) > 0
        assert any(";ulam_sparse " in line + " " or
                   line.split(" ")[0].endswith(";ulam_sparse")
                   for line in lines)

    def test_profile_subcommand_json_totals(self, tmp_path, capsys):
        with enabled():
            _, record = _ulam_record()
        rec_file = tmp_path / "run.jsonl"
        rec_file.write_text(json.dumps(record, sort_keys=True) + "\n")
        from repro.cli import main
        assert main(["profile", str(rec_file), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["source"] == "record"
        assert doc["kernels"]["ulam_sparse"]["calls"] > 0
        assert doc["rows"] == record_profile(record)

    def test_profile_subcommand_rejects_unprofiled_record(
            self, tmp_path, capsys):
        _, record = _ulam_record()  # profiling off
        rec_file = tmp_path / "run.jsonl"
        rec_file.write_text(json.dumps(record, sort_keys=True) + "\n")
        from repro.cli import main
        assert main(["profile", str(rec_file)]) == 1
        assert "no kernel profile data" in capsys.readouterr().err
