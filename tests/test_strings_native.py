"""Backend equivalence for the native/batched string kernels.

The dispatch contract of :mod:`repro.strings.native` is that backends
("pure" vs the ambient batch/numba backend) differ **only** in
wall-clock: distances, abstract work, ``strings.*`` metric deltas,
kernel-probe call/cell attribution and distance-cache hit/miss counters
are byte-identical.  These tests drive every batch entry point through
both backends on random and boundary inputs and compare all of it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import enabled as metrics_enabled
from repro.metrics import scoped_snapshot
from repro.mpc import WorkMeter
from repro.mpc.distcache import DistanceCache
from repro.obs import profile as obs_profile
from repro.obs.profile import collect_profile
from repro.strings import (kernel_backend, levenshtein_doubling,
                           levenshtein_doubling_batch, numba_available,
                           set_backend, ulam_auto, ulam_auto_batch,
                           use_backend, within_threshold,
                           within_threshold_batch)
from repro.strings import native
from repro.strings.bitparallel import _rows
from repro.strings.native import myers_words_rows

from .helpers import brute_edit_distance


def _metered(fn):
    """``fn()`` under full metering; returns
    ``(result, work, metrics_delta, profile_calls_cells)``."""
    with metrics_enabled(), obs_profile.enabled():
        with scoped_snapshot() as scope, WorkMeter() as meter, \
                collect_profile() as prof:
            result = fn()
    shape = {k: v[:2] for k, v in (prof.data or {}).items()}
    return result, meter.total, scope.delta(), shape


def _assert_backends_agree(fn, normalize=list):
    with use_backend("pure"):
        res_p, work_p, met_p, prof_p = _metered(fn)
    res_b, work_b, met_b, prof_b = _metered(fn)
    assert normalize(res_p) == normalize(res_b)
    assert work_p == work_b
    assert met_p == met_b
    assert prof_p == prof_b
    return normalize(res_b)


class TestBackendSelection:
    def test_default_backend(self):
        expected = "numba" if numba_available() else "batch"
        assert kernel_backend() == expected

    def test_env_flag_forces_pure(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        assert kernel_backend() == "pure"
        monkeypatch.setenv("REPRO_NO_NATIVE", "0")
        assert kernel_backend() != "pure"

    def test_set_backend_roundtrip(self):
        set_backend("pure")
        try:
            assert kernel_backend() == "pure"
        finally:
            set_backend(None)
        assert kernel_backend() != "pure"

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_backend("cuda")

    def test_set_backend_rejects_missing_numba(self):
        if numba_available():  # pragma: no cover - numba containers
            pytest.skip("numba present")
        with pytest.raises(ValueError):
            set_backend("numba")

    def test_use_backend_restores_on_exit(self):
        before = kernel_backend()
        with use_backend("pure"):
            assert kernel_backend() == "pure"
        assert kernel_backend() == before


def _random_pairs(rng, n_pairs=40, max_len=24, sigma=4):
    pairs = []
    for _ in range(n_pairs):
        m, n = rng.integers(0, max_len, 2)
        pairs.append((rng.integers(0, sigma, m).astype(np.int64),
                      rng.integers(0, sigma, n).astype(np.int64)))
    return pairs


class TestThresholdBatchEquivalence:
    def test_matches_scalar_and_brute_force(self, rng):
        pairs = _random_pairs(rng)
        for tau in (0, 1, 3, 8):
            batch = _assert_backends_agree(
                lambda: within_threshold_batch(pairs, tau))
            for (a, b), got in zip(pairs, batch):
                assert got == (brute_edit_distance(a.tolist(),
                                                   b.tolist()) <= tau)
                assert got == within_threshold(a, b, tau)

    def test_boundary_pairs(self):
        empty = np.zeros(0, dtype=np.int64)
        a = np.array([1, 2, 3], dtype=np.int64)
        far = np.arange(10, dtype=np.int64)
        pairs = [(empty, empty), (empty, a), (a, empty), (a, a),
                 (far, far[:2]),       # length gap > tau: shortcut path
                 (a, a + 1)]
        for tau in (0, 2, 5):
            batch = _assert_backends_agree(
                lambda: within_threshold_batch(pairs, tau))
            assert batch == [within_threshold(x, y, tau)
                             for x, y in pairs]

    def test_tau_at_exact_distance_boundary(self, rng):
        for _ in range(25):
            m, n = rng.integers(1, 16, 2)
            a = rng.integers(0, 3, m).astype(np.int64)
            b = rng.integers(0, 3, n).astype(np.int64)
            d = brute_edit_distance(a.tolist(), b.tolist())
            for tau in (max(d - 1, 0), d, d + 1):
                got = _assert_backends_agree(
                    lambda: within_threshold_batch([(a, b)], tau))
                assert got == [d <= tau]


class TestDoublingBatchEquivalence:
    def test_matches_scalar_and_brute_force(self, rng):
        pairs = _random_pairs(rng, n_pairs=30, max_len=18, sigma=3)
        batch = _assert_backends_agree(
            lambda: levenshtein_doubling_batch(pairs))
        for (a, b), got in zip(pairs, batch):
            assert got == brute_edit_distance(a.tolist(), b.tolist())
            assert got == levenshtein_doubling(a, b)

    def test_empty_and_identical(self):
        empty = np.zeros(0, dtype=np.int64)
        a = np.arange(6, dtype=np.int64)
        pairs = [(empty, empty), (empty, a), (a, a), (a, a[::-1].copy())]
        batch = _assert_backends_agree(
            lambda: levenshtein_doubling_batch(pairs))
        assert batch == [0, 6, 0, brute_edit_distance(a.tolist(),
                                                      a[::-1].tolist())]


class TestDoublingLowerBoundReuse:
    """The doubling loop reuses each band's value as a lower *and*
    upper bound: ``value <= k+1`` certifies immediately, and ``k``
    jumps straight to ``min(2k, value)``."""

    def test_transposition_resolved_in_one_band(self):
        # d("ab","ba") = 2: the k=1 band returns 2 = k+1, which the
        # bound argument certifies without a second, wider band.
        with metrics_enabled(), obs_profile.enabled():
            with collect_profile() as prof:
                assert levenshtein_doubling("ab", "ba") == 2
        assert prof.data["banded"][0] == 1  # exactly one banded call

    def test_disjoint_strings_jump_to_bound(self):
        # d = 40 (disjoint alphabets): successive bands learn d > k and
        # jump k to the band value instead of plain doubling, so the
        # call count stays logarithmic and the cell total is pinned.
        a = np.zeros(40, dtype=np.int64)
        b = np.ones(40, dtype=np.int64)
        with metrics_enabled(), obs_profile.enabled():
            with collect_profile() as prof:
                assert levenshtein_doubling(a, b) == 40
        calls, cells = prof.data["banded"][:2]
        assert calls == 7
        assert cells == 8807


def _synthetic_ulam_jobs(rng, n_jobs=25, max_pts=20):
    jobs = []
    for _ in range(n_jobs):
        c = int(rng.integers(0, max_pts))
        m = int(rng.integers(c, c + 8))
        n = int(rng.integers(c, c + 8))
        i_pts = np.sort(rng.choice(max(m, 1), size=min(c, max(m, 1)),
                                   replace=False)).astype(np.int64)
        p_pts = rng.permutation(
            np.sort(rng.choice(max(n, 1), size=len(i_pts),
                               replace=False))).astype(np.int64)
        jobs.append((i_pts, p_pts, m, n))
    return jobs


class TestUlamBatchEquivalence:
    def test_matches_scalar(self, rng):
        jobs = _synthetic_ulam_jobs(rng)
        batch = _assert_backends_agree(lambda: ulam_auto_batch(jobs))
        assert batch == [ulam_auto(*job) for job in jobs]

    def test_empty_jobs(self):
        empty = np.zeros(0, dtype=np.int64)
        jobs = [(empty, empty, 0, 0), (empty, empty, 3, 5)]
        batch = _assert_backends_agree(lambda: ulam_auto_batch(jobs))
        assert batch == [0, 5]


class TestCacheFolding:
    """Intra-batch dedupe keeps cache hit/miss counters byte-identical
    to the scalar per-call path."""

    def _windows(self, rng):
        from repro.ulam.candidates import _window_distances
        windows = []
        for _ in range(6):
            c = int(rng.integers(2, 10))
            i_sel = np.sort(rng.choice(16, size=c,
                                       replace=False)).astype(np.int64)
            p_rel = rng.permutation(c).astype(np.int64)
            windows.append((0, 16, i_sel, p_rel))
        # Duplicate content: repeats must be hits on both backends.
        windows += [windows[0], windows[2], windows[0]]
        return _window_distances, windows

    def test_hit_miss_counters_match(self, rng):
        fn, windows = self._windows(rng)
        with use_backend("pure"):
            cache_p = DistanceCache()
            dists_p = fn(windows, 16, cache_p)
        cache_b = DistanceCache()
        dists_b = fn(windows, 16, cache_b)
        assert dists_p == dists_b
        assert (cache_p.hits, cache_p.misses) == \
            (cache_b.hits, cache_b.misses)
        assert cache_b.hits == 3

    def test_uncached_path_matches(self, rng):
        fn, windows = self._windows(rng)
        with use_backend("pure"):
            dists_p = fn(windows, 16, None)
        assert fn(windows, 16, None) == dists_p


class TestBlockMachineEquivalence:
    def test_run_block_machine_identical(self):
        from repro.ulam.candidates import make_block_payload, \
            run_block_machine
        from repro.ulam.config import UlamConfig
        rng = np.random.default_rng(3)
        n = 64
        positions = rng.permutation(n).astype(np.int64)
        positions[rng.choice(n, size=8, replace=False)] = -1
        payload = make_block_payload(
            0, n, positions, n_t=n, eps_prime=0.25,
            u_guesses=[2, 8, 32], theta=0.3, seed=11,
            config=UlamConfig.practical())
        with use_backend("pure"):
            tuples_p, work_p, met_p, prof_p = _metered(
                lambda: run_block_machine(dict(payload)))
        tuples_b, work_b, met_b, prof_b = _metered(
            lambda: run_block_machine(dict(payload)))
        assert tuples_p == tuples_b
        assert work_p == work_b
        assert met_p == met_b
        assert prof_p == prof_b


class TestMyersMultiWord:
    def test_matches_single_word_rows(self, rng):
        for m in (1, 5, 63, 64, 65, 127, 128, 130):
            for n in (0, 1, 8, 40):
                a = rng.integers(0, 200, m).astype(np.int64)
                b = rng.integers(0, 260, n).astype(np.int64)
                for carry in (True, False):
                    rows = myers_words_rows(a, b, carry)
                    ref = _rows(a, b, carry)
                    assert np.array_equal(np.asarray(rows),
                                          np.asarray(ref)), (m, n, carry)

    def test_distance_at_word_boundaries(self, rng):
        from repro.strings.bitparallel import myers_levenshtein
        for m in (63, 64, 65, 128, 129):
            a = rng.integers(0, 4, m).astype(np.int64)
            b = a.copy()
            b[m // 2] = 7
            assert myers_levenshtein(a, b) == \
                brute_edit_distance(a.tolist(), b.tolist())


short = st.lists(st.integers(0, 3), min_size=0, max_size=16)


class TestBackendProperties:
    @given(a=short, b=short, tau=st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_threshold_batch_property(self, a, b, tau):
        aa = np.array(a, dtype=np.int64)
        bb = np.array(b, dtype=np.int64)
        pairs = [(aa, bb), (bb, aa)]
        got = _assert_backends_agree(
            lambda: within_threshold_batch(pairs, tau))
        d = brute_edit_distance(a, b)
        assert got == [d <= tau, d <= tau]

    @given(a=short, b=short)
    @settings(max_examples=40, deadline=None)
    def test_doubling_batch_property(self, a, b):
        aa = np.array(a, dtype=np.int64)
        bb = np.array(b, dtype=np.int64)
        got = _assert_backends_agree(
            lambda: levenshtein_doubling_batch([(aa, bb)]))
        assert got == [brute_edit_distance(a, b)]


class TestNumPyKernelPrimitives:
    """The shared NumPy reference kernels behind both batch paths."""

    def test_banded_values_batch_matches_scalar(self, rng):
        pairs = []
        for _ in range(30):
            m = int(rng.integers(1, 20))
            n = int(np.clip(m + rng.integers(-4, 5), 1, None))
            pairs.append((rng.integers(0, 4, m).astype(np.int64),
                          rng.integers(0, 4, n).astype(np.int64)))
        for k in (4, 7, 21):
            good = [(a, b) for a, b in pairs if abs(len(a) - len(b)) <= k]
            vals = native._np_banded_values_batch(good, k)
            for (a, b), v in zip(good, vals):
                assert v == native.np_banded_value(a, b, k)

    def test_chain_dp_batch_matches_scalar(self, rng):
        jobs = _synthetic_ulam_jobs(rng, n_jobs=30)
        vals = native._np_chain_dp_batch(jobs)
        for (i_pts, p_pts, m, n), v in zip(jobs, vals):
            assert v == native.np_chain_dp(i_pts, p_pts, m, n,
                                           len(i_pts), 0)
