"""Tests for Hirschberg linear-memory alignment and the run-trace module."""

import numpy as np
import pytest

from repro import mpc_ulam
from repro.mpc import (MPCSimulator, load_run_stats, run_stats_from_dict,
                       run_stats_to_dict, save_run_stats)
from repro.strings import (apply_script, hirschberg_script, levenshtein,
                           levenshtein_script)
from repro.workloads.permutations import planted_pair
from repro.workloads.strings import random_string


class TestHirschberg:
    def test_script_length_is_optimal(self, rng):
        for _ in range(60):
            a = rng.integers(0, 4, int(rng.integers(0, 30))).tolist()
            b = rng.integers(0, 4, int(rng.integers(0, 30))).tolist()
            ops = hirschberg_script(a, b)
            assert len(ops) == levenshtein(a, b)

    def test_script_replays(self, rng):
        for _ in range(60):
            a = rng.integers(0, 4, int(rng.integers(0, 30))).tolist()
            b = rng.integers(0, 4, int(rng.integers(0, 30))).tolist()
            ops = hirschberg_script(a, b)
            assert apply_script(a, b, ops).tolist() == b

    def test_large_input_crosses_recursion(self):
        a = random_string(600, 4, seed=1)
        b = random_string(590, 4, seed=2)
        ops = hirschberg_script(a, b)
        assert len(ops) == levenshtein(a, b)
        assert apply_script(a, b, ops).tolist() == b.tolist()

    def test_agrees_with_full_table_aligner_cost(self, rng):
        a = rng.integers(0, 3, 40).tolist()
        b = rng.integers(0, 3, 44).tolist()
        d_full, _ = levenshtein_script(a, b)
        assert len(hirschberg_script(a, b)) == d_full

    def test_empty_sides(self):
        assert hirschberg_script([], [1, 2]) == [("insert", 0, 0),
                                                 ("insert", 0, 1)]
        assert len(hirschberg_script([1, 2], [])) == 2

    def test_memory_stays_linear(self):
        # smoke proxy: no 2-D table allocation for a 2000x2000 problem
        # (would be 32 MB of int64 — the run finishing quickly under the
        # work meter is the functional check, exactness asserted above)
        a = random_string(1500, 4, seed=3)
        b = random_string(1500, 4, seed=4)
        ops = hirschberg_script(a, b)
        assert len(ops) == levenshtein(a, b)


class TestRunTrace:
    def _stats(self):
        s, t, _ = planted_pair(64, 4, seed=1)
        return mpc_ulam(s, t, x=0.4, eps=1.0).stats

    def test_round_trip_dict(self):
        stats = self._stats()
        again = run_stats_from_dict(run_stats_to_dict(stats))
        assert again.summary() == stats.summary()
        assert [r.name for r in again.rounds] == \
            [r.name for r in stats.rounds]

    def test_round_trip_file(self, tmp_path):
        stats = self._stats()
        path = tmp_path / "ledger.json"
        save_run_stats(stats, path)
        again = load_run_stats(path)
        assert again.summary() == stats.summary()

    def test_json_is_readable(self, tmp_path):
        import json
        stats = self._stats()
        path = tmp_path / "ledger.json"
        save_run_stats(stats, path)
        data = json.loads(path.read_text())
        assert data["summary"]["rounds"] == 2
        assert len(data["rounds"]) == 2
        assert data["rounds"][0]["name"] == "ulam/1-candidates"

    def test_empty_stats_round_trip(self):
        from repro.mpc import RunStats
        empty = RunStats()
        assert run_stats_from_dict(
            run_stats_to_dict(empty)).summary() == empty.summary()
