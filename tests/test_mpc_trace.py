"""Unit tests for the ledger serialisation schema (repro.mpc.trace).

The round-trip test deliberately sets a *non-default* value for every
serialised field: the old coercion derived each field's target type from
its default value, which silently truncated floats stored in
int-defaulted fields — exactly the class of bug these tests pin down.
"""

import dataclasses

import pytest

from repro.mpc import RoundStats, RunStats, run_stats_from_dict, \
    run_stats_to_dict
from repro.mpc.trace import _FIELD_TYPES


def _full_round():
    """A RoundStats with a distinct non-default value in every field."""
    return RoundStats(name="r/one", machines=3, max_input_words=11,
                      max_output_words=12, total_input_words=31,
                      total_output_words=29, max_work=101, total_work=222,
                      wall_seconds=0.125, broadcast_words=7,
                      shuffle_words=17, shuffle_work=19, attempts=4,
                      retried_machines=2, dropped_machines=1,
                      failed_attempts=6, wasted_work=55,
                      wasted_wall_seconds=0.0625,
                      kernel_profile={"banded": [5, 250, 0.5, 2, 0.375, 1]})


class TestSchema:
    def test_every_dataclass_field_is_serialised(self):
        declared = {f.name for f in dataclasses.fields(RoundStats)}
        assert declared == set(_FIELD_TYPES), \
            "serialisation schema out of sync with RoundStats"

    def test_round_trip_preserves_every_field(self):
        stats = RunStats(rounds=[_full_round()])
        again = run_stats_from_dict(run_stats_to_dict(stats))
        assert again.rounds[0] == _full_round()

    def test_round_trip_preserves_non_default_floats_in_all_fields(self):
        # every numeric field survives with its exact value, no truncation
        data = run_stats_to_dict(RunStats(rounds=[_full_round()]))
        restored = run_stats_from_dict(data).rounds[0]
        for f in _FIELD_TYPES:
            assert getattr(restored, f) == getattr(_full_round(), f), f


class TestCoercion:
    def _data(self, **overrides):
        data = run_stats_to_dict(RunStats(rounds=[_full_round()]))
        data["rounds"][0].update(overrides)
        return data

    def test_float_in_int_field_raises_instead_of_truncating(self):
        with pytest.raises(ValueError, match="total_work"):
            run_stats_from_dict(self._data(total_work=222.7))

    def test_integral_float_in_int_field_accepted(self):
        # JSON readers may hand back 222.0 for an int; lossless, so fine
        stats = run_stats_from_dict(self._data(total_work=222.0))
        assert stats.rounds[0].total_work == 222
        assert isinstance(stats.rounds[0].total_work, int)

    def test_string_in_numeric_field_raises(self):
        with pytest.raises(ValueError, match="machines"):
            run_stats_from_dict(self._data(machines="3"))

    def test_non_string_name_raises(self):
        with pytest.raises(ValueError, match="name"):
            run_stats_from_dict(self._data(name=7))

    def test_int_in_float_field_widens(self):
        stats = run_stats_from_dict(self._data(wall_seconds=2))
        assert stats.rounds[0].wall_seconds == 2.0
        assert isinstance(stats.rounds[0].wall_seconds, float)

    def test_legacy_ledger_without_recovery_fields_loads(self):
        data = run_stats_to_dict(RunStats(rounds=[_full_round()]))
        for f in ("attempts", "retried_machines", "dropped_machines",
                  "failed_attempts", "wasted_work", "wasted_wall_seconds"):
            del data["rounds"][0][f]
        stats = run_stats_from_dict(data)
        r = stats.rounds[0]
        assert r.attempts == 1
        assert r.retried_machines == 0
        assert r.failed_attempts == 0
        assert r.total_work == 222      # explicit fields still load


class TestUnknownFields:
    def test_unknown_round_field_raises(self):
        data = run_stats_to_dict(RunStats(rounds=[_full_round()]))
        data["rounds"][0]["gpu_seconds"] = 1.5
        with pytest.raises(ValueError, match="gpu_seconds"):
            run_stats_from_dict(data)

    def test_error_names_every_unknown_field_and_round(self):
        data = run_stats_to_dict(
            RunStats(rounds=[_full_round(), _full_round()]))
        data["rounds"][0]["alpha"] = 1
        data["rounds"][1]["alpha"] = 2
        data["rounds"][1]["beta"] = 3
        with pytest.raises(ValueError) as err:
            run_stats_from_dict(data)
        message = str(err.value)
        assert "alpha" in message and "beta" in message
        assert "newer version" in message


class TestAtomicSave:
    def test_save_load_round_trip(self, tmp_path):
        from repro.mpc import load_run_stats, save_run_stats
        path = tmp_path / "ledger.json"
        save_run_stats(RunStats(rounds=[_full_round()]), path)
        assert load_run_stats(path).rounds[0] == _full_round()

    def test_no_temp_residue_after_save(self, tmp_path):
        from repro.mpc import save_run_stats
        save_run_stats(RunStats(rounds=[_full_round()]),
                       tmp_path / "ledger.json")
        assert [p.name for p in tmp_path.iterdir()] == ["ledger.json"]

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        from repro.mpc import load_run_stats, save_run_stats
        path = tmp_path / "ledger.json"
        save_run_stats(RunStats(rounds=[_full_round()]), path)
        small = RunStats()
        save_run_stats(small, path)
        assert load_run_stats(path).rounds == []
        assert len(list(tmp_path.iterdir())) == 1

    def test_failed_save_leaves_old_file_and_no_residue(self, tmp_path):
        from repro.mpc import load_run_stats, save_run_stats
        path = tmp_path / "ledger.json"
        save_run_stats(RunStats(rounds=[_full_round()]), path)
        bad = RunStats()
        bad.rounds = [object()]     # not a RoundStats: serialisation fails
        with pytest.raises(Exception):
            save_run_stats(bad, path)
        # The original ledger is intact and no .tmp file leaked.
        assert load_run_stats(path).rounds[0] == _full_round()
        assert [p.name for p in tmp_path.iterdir()] == ["ledger.json"]
