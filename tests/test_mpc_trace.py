"""Unit tests for the ledger serialisation schema (repro.mpc.trace).

The round-trip test deliberately sets a *non-default* value for every
serialised field: the old coercion derived each field's target type from
its default value, which silently truncated floats stored in
int-defaulted fields — exactly the class of bug these tests pin down.
"""

import dataclasses

import pytest

from repro.mpc import RoundStats, RunStats, run_stats_from_dict, \
    run_stats_to_dict
from repro.mpc.trace import _FIELD_TYPES


def _full_round():
    """A RoundStats with a distinct non-default value in every field."""
    return RoundStats(name="r/one", machines=3, max_input_words=11,
                      max_output_words=12, total_input_words=31,
                      total_output_words=29, max_work=101, total_work=222,
                      wall_seconds=0.125, attempts=4, retried_machines=2,
                      dropped_machines=1, wasted_work=55,
                      wasted_wall_seconds=0.0625)


class TestSchema:
    def test_every_dataclass_field_is_serialised(self):
        declared = {f.name for f in dataclasses.fields(RoundStats)}
        assert declared == set(_FIELD_TYPES), \
            "serialisation schema out of sync with RoundStats"

    def test_round_trip_preserves_every_field(self):
        stats = RunStats(rounds=[_full_round()])
        again = run_stats_from_dict(run_stats_to_dict(stats))
        assert again.rounds[0] == _full_round()

    def test_round_trip_preserves_non_default_floats_in_all_fields(self):
        # every numeric field survives with its exact value, no truncation
        data = run_stats_to_dict(RunStats(rounds=[_full_round()]))
        restored = run_stats_from_dict(data).rounds[0]
        for f in _FIELD_TYPES:
            assert getattr(restored, f) == getattr(_full_round(), f), f


class TestCoercion:
    def _data(self, **overrides):
        data = run_stats_to_dict(RunStats(rounds=[_full_round()]))
        data["rounds"][0].update(overrides)
        return data

    def test_float_in_int_field_raises_instead_of_truncating(self):
        with pytest.raises(ValueError, match="total_work"):
            run_stats_from_dict(self._data(total_work=222.7))

    def test_integral_float_in_int_field_accepted(self):
        # JSON readers may hand back 222.0 for an int; lossless, so fine
        stats = run_stats_from_dict(self._data(total_work=222.0))
        assert stats.rounds[0].total_work == 222
        assert isinstance(stats.rounds[0].total_work, int)

    def test_string_in_numeric_field_raises(self):
        with pytest.raises(ValueError, match="machines"):
            run_stats_from_dict(self._data(machines="3"))

    def test_non_string_name_raises(self):
        with pytest.raises(ValueError, match="name"):
            run_stats_from_dict(self._data(name=7))

    def test_int_in_float_field_widens(self):
        stats = run_stats_from_dict(self._data(wall_seconds=2))
        assert stats.rounds[0].wall_seconds == 2.0
        assert isinstance(stats.rounds[0].wall_seconds, float)

    def test_legacy_ledger_without_recovery_fields_loads(self):
        data = run_stats_to_dict(RunStats(rounds=[_full_round()]))
        for f in ("attempts", "retried_machines", "dropped_machines",
                  "wasted_work", "wasted_wall_seconds"):
            del data["rounds"][0][f]
        stats = run_stats_from_dict(data)
        r = stats.rounds[0]
        assert r.attempts == 1
        assert r.retried_machines == 0
        assert r.total_work == 222      # explicit fields still load
