"""Generate the golden-equivalence fixtures in this directory.

The fixtures freeze the observable behaviour of every driver *before*
the port onto :mod:`repro.mpc.plan`: for fixed seeds, each JSON file
records the returned value(s) and the per-round (machines, memory, work)
ledger.  The equivalence suite (``tests/test_golden_equivalence.py``)
re-runs the ported drivers against these files, so any port that changes
a distance, a machine count, a word of memory, or a unit of work fails
loudly.

Regenerating (only when a ledger change is *intended* and documented)::

    PYTHONPATH=src python tests/golden/generate.py
"""

from __future__ import annotations

import json
import pathlib

HERE = pathlib.Path(__file__).parent

#: The per-round fields frozen by the fixtures — exactly the three
#: quantities the paper prices (plus the word-level memory detail).
LEDGER_FIELDS = ("name", "machines", "max_input_words", "max_output_words",
                 "total_input_words", "total_output_words", "max_work",
                 "total_work")


def ledger(stats) -> list:
    return [{f: getattr(r, f) for f in LEDGER_FIELDS} for r in stats.rounds]


def case_ulam():
    from repro.ulam import mpc_ulam
    from repro.workloads.permutations import planted_pair
    s, t, _ = planted_pair(256, 16, seed=3, style="mixed")
    res = mpc_ulam(s, t, x=0.4, eps=0.5, seed=7)
    return {"distance": res.distance, "n_tuples": res.n_tuples,
            "rounds": ledger(res.stats)}


def case_edit_small():
    from repro.editdistance import mpc_edit_distance
    from repro.workloads.strings import planted_pair
    s, t, _ = planted_pair(256, 12, sigma=4, seed=5)
    res = mpc_edit_distance(s, t, x=0.25, eps=1.0, seed=9)
    return {"distance": res.distance, "regime": res.regime,
            "accepted_guess": res.accepted_guess,
            "rounds": ledger(res.stats)}


def case_edit_large():
    from repro.editdistance.config import EditConfig
    from repro.editdistance.large import large_distance_upper_bound
    from repro.mpc import MPCSimulator
    from repro.params import EditParams
    from repro.workloads.strings import block_shuffled_pair
    s, t = block_shuffled_pair(192, 8, seed=5)
    params = EditParams(n=192, x=0.29, eps=1.0, eps_prime_divisor=4)
    cfg = EditConfig(max_representatives=16, max_low_degree_samples=8,
                     max_extensions_per_pair_source=8)
    sim = MPCSimulator(memory_limit=params.memory_limit)
    bound, diag = large_distance_upper_bound(s, t, params, guess=24,
                                             sim=sim, config=cfg, seed=2)
    return {"bound": bound, "n_tuples": diag["n_tuples"],
            "rounds": ledger(sim.stats)}


def case_lis():
    from repro.extensions import mpc_lis
    from repro.workloads.permutations import apply_moves, random_permutation
    seq = apply_moves(random_permutation(200, seed=2), 12, seed=4)
    res = mpc_lis(seq, x=0.3, eps=0.25)
    return {"lis": res.lis, "n_buckets": res.n_buckets,
            "rounds": ledger(res.stats)}


def case_lcs():
    from repro.extensions import mpc_lcs
    from repro.workloads.strings import planted_pair
    s, t, _ = planted_pair(200, 10, sigma=4, seed=6)
    res = mpc_lcs(s, t, x=0.25, eps=0.25)
    return {"lcs": res.lcs, "n_tuples": res.n_tuples,
            "rounds": ledger(res.stats)}


def case_search():
    from repro.extensions import mpc_approximate_search
    from repro.workloads.strings import planted_pair
    s, t, _ = planted_pair(300, 6, sigma=4, seed=8)
    res = mpc_approximate_search(s[:24], t, k=3)
    return {"matches": [[m.start, m.end, m.distance] for m in res.matches],
            "rounds": ledger(res.stats)}


def case_hss():
    from repro.baselines import hss_edit_distance
    from repro.workloads.strings import planted_pair
    s, t, _ = planted_pair(128, 8, sigma=4, seed=10)
    res = hss_edit_distance(s, t, x=0.25, eps=1.0)
    return {"distance": res.distance, "accepted_guess": res.accepted_guess,
            "rounds": ledger(res.stats)}


def case_beghs():
    from repro.baselines import beghs_edit_distance
    from repro.workloads.strings import planted_pair
    s, t, _ = planted_pair(128, 8, sigma=4, seed=12)
    res = beghs_edit_distance(s, t, eps=1.0)
    return {"distance": res.distance, "accepted_guess": res.accepted_guess,
            "rounds": ledger(res.stats)}


def case_single_machine():
    from repro.baselines import (single_machine_edit_distance,
                                 single_machine_ulam)
    from repro.workloads.permutations import planted_pair as perm_pair
    from repro.workloads.strings import planted_pair as str_pair
    s1, t1, _ = str_pair(150, 9, sigma=4, seed=14)
    s2, t2, _ = perm_pair(150, 9, seed=15, style="mixed")
    ed = single_machine_edit_distance(s1, t1)
    ul = single_machine_ulam(s2, t2)
    return {"edit_distance": ed.distance, "ulam_distance": ul.distance,
            "edit_rounds": ledger(ed.stats), "ulam_rounds": ledger(ul.stats)}


CASES = {
    "ulam": case_ulam,
    "edit_small": case_edit_small,
    "edit_large": case_edit_large,
    "lis": case_lis,
    "lcs": case_lcs,
    "search": case_search,
    "hss": case_hss,
    "beghs": case_beghs,
    "single_machine": case_single_machine,
}


def main() -> None:
    for name, fn in CASES.items():
        data = fn()
        path = HERE / f"{name}.json"
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
