"""E20 — overhead of the telemetry layer.

Two claims are measured on the Ulam workload:

1. **Free when disabled**: a simulator with ``tracer=None`` (the
   default) pays one ``is None`` check per round; its wall-clock must be
   indistinguishable from the seed code path (< 5 % paired delta, and
   in practice ~0 %).
2. **Cheap when enabled**: streaming every span to a
   :class:`~repro.mpc.telemetry.JsonlSink` — the worst-case sink, one
   ``write``+``flush`` per machine invocation — must stay within 5 % of
   the untraced run, so tracing is safe to leave on for real
   experiments.

The span-count identity is asserted as well: a traced run emits exactly
one machine span per ledger machine invocation.
"""

import time

from repro import UlamConfig, mpc_ulam
from repro.analysis import format_table, work_decomposition
from repro.mpc import MPCSimulator, Tracer
from repro.workloads.permutations import planted_pair

from .conftest import run_once

N = 1024
X = 0.4
EPS = 1.0
REPS = 5
CFG = UlamConfig.practical()


def _once(s, t, make_sim):
    sim = make_sim()
    t0 = time.perf_counter()
    res = mpc_ulam(s, t, x=X, eps=EPS, seed=1, sim=sim, config=CFG)
    sec = time.perf_counter() - t0
    if sim is not None and sim.tracer is not None:
        sim.tracer.close()
    return sec, res.distance, res.stats, sim


def _run(tmp_dir):
    s, t, _ = planted_pair(N, N // 8, seed=31, style="mixed")

    def untraced():
        return MPCSimulator()

    def traced_memory():
        return MPCSimulator(tracer=Tracer.in_memory())

    def traced_jsonl():
        return MPCSimulator(
            tracer=Tracer.to_jsonl(tmp_dir / "e20.jsonl"))

    # Interleave the variants within each repetition and compare them
    # *pairwise per rep* (see bench_fault_overhead.py): back-to-back
    # runs see the same system load, so the rep-wise minimum ratio
    # cancels machine-noise drift that independent best-of times cannot.
    base_s = mem_s = jsonl_s = float("inf")
    mem_ratio = jsonl_ratio = float("inf")
    for _ in range(REPS):
        base_sec, base_d, base_stats, _sim = _once(s, t, untraced)
        base_s = min(base_s, base_sec)
        sec, mem_d, _stats, mem_sim = _once(s, t, traced_memory)
        mem_s = min(mem_s, sec)
        mem_ratio = min(mem_ratio, sec / base_sec)
        sec, jsonl_d, jsonl_stats, _sim = _once(s, t, traced_jsonl)
        jsonl_s = min(jsonl_s, sec)
        jsonl_ratio = min(jsonl_ratio, sec / base_sec)

    spans = mem_sim.tracer.spans
    machine_spans = sum(1 for sp in spans if sp.kind == "machine")
    decomp = work_decomposition(spans)
    return {
        "base_s": base_s,
        "mem_s": mem_s,
        "mem_delta": mem_ratio - 1.0,
        "jsonl_s": jsonl_s,
        "jsonl_delta": jsonl_ratio - 1.0,
        "base_answer": base_d,
        "same_answer": base_d == mem_d == jsonl_d,
        "machine_spans": machine_spans,
        "ledger_invocations": jsonl_stats.total_machine_invocations,
        "parallelism": decomp["parallelism"],
    }


def bench_telemetry_overhead(benchmark, report, tmp_path):
    row = run_once(benchmark, _run, tmp_path)
    lines = [
        "Telemetry overhead on the Ulam workload "
        f"(n = {N}, x = {X}, best of {REPS})",
        "",
        format_table(
            ["variant", "seconds", "delta_vs_base"],
            [["tracer=None (default)", row["base_s"], 0.0],
             ["InMemorySink", row["mem_s"], row["mem_delta"]],
             ["JsonlSink, write+flush per span", row["jsonl_s"],
              row["jsonl_delta"]]]),
        "",
        f"machine spans = {row['machine_spans']} == ledger invocations = "
        f"{row['ledger_invocations']}; "
        f"measured parallelism {row['parallelism']:.2f}x",
    ]
    report("E20_telemetry_overhead", "\n".join(lines))

    assert row["same_answer"]
    # One machine span per ledger machine invocation, exactly.
    assert row["machine_spans"] == row["ledger_invocations"]
    # Tracing must stay within 5% of the untraced run even with the
    # worst-case streaming sink (generous slack over timer noise).
    assert row["mem_delta"] < 0.05, row
    assert row["jsonl_delta"] < 0.05, row
