"""Benchmark harness: one module per EXPERIMENTS.md experiment (E1-E13)."""
