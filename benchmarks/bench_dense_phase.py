"""E8 — Lemma 7: the representative / triangle-inequality phase.

Builds the ``G_τ`` node universe on a far pair, runs representative
sampling, and verifies Lemma 7's two promises directly against brute
force:

* **recall** — for every *covered* block (one with a representative
  within ``τ``), every candidate within ``τ`` of the block receives an
  edge; and
* **stretch** — every generated edge weight upper-bounds the true
  distance and stays within ``3τ*`` of its generating threshold.
"""

import numpy as np

from repro.analysis import format_table
from repro.editdistance.graph import (RepDistances, build_candidate_nodes,
                                      node_string)
from repro.params import EditParams
from repro.strings import levenshtein
from repro.workloads.strings import block_shuffled_pair

from .conftest import run_once

N = 256
X = 0.29
EPS = 1.0


def _run():
    s, t = block_shuffled_pair(N, 8, seed=21)
    params = EditParams(n=N, x=X, eps=EPS, eps_prime_divisor=4)
    guess = params.distance_boundary + 1  # large regime geometry
    B = params.block_size_large
    gap = params.gap(guess, B)
    blocks = [("b", lo, min(lo + B, N)) for lo in range(0, N, B)]
    cands = build_candidate_nodes(N, B, gap, guess, params.eps_prime)

    rng = np.random.default_rng(5)
    all_nodes = blocks + cands
    rep_ids = sorted(rng.choice(len(all_nodes), size=12, replace=False))

    rd = RepDistances()
    for ri, node_idx in enumerate(rep_ids):
        rep_arr = node_string(all_nodes[node_idx], s, t)
        for node in all_nodes:
            rd.add(node, ri, levenshtein(rep_arr, node_string(node, s, t)))
    edges = rd.triangle_edges(blocks, cands)

    # brute-force ground truth for stretch/recall
    true = {}
    for b in blocks:
        b_arr = node_string(b, s, t)
        for u in cands:
            true[(b, u)] = levenshtein(b_arr, node_string(u, s, t))

    taus = [2 ** k for k in range(1, 9)]
    rows = []
    for tau in taus:
        covered = [b for b in blocks
                   if rd.nearest_rep_distance(b) is not None
                   and rd.nearest_rep_distance(b) <= tau]
        want = [(b, u) for b in covered for u in cands
                if true[(b, u)] <= tau]
        got = [pair for pair in want if pair in edges]
        rows.append({
            "tau": tau,
            "covered_blocks": f"{len(covered)}/{len(blocks)}",
            "recall": f"{len(got)}/{len(want)}" if want else "n/a",
            "recall_ok": len(got) == len(want),
        })

    validity_ok = all(w >= true[p] for p, w in edges.items())

    # Lemma 7 stretch: every edge weight is at most 3·tau* where tau* is
    # the smallest threshold at which the per-threshold procedure would
    # have generated it (tau* = min over shared reps of
    # max(d(b,z), d(z,u)/2)).
    max_rel_stretch = 0.0
    for (b, u), w in edges.items():
        tau_star = min(
            max(dbz, dzu / 2)
            for z1, dbz in rd.per_node[b]
            for z2, dzu in rd.per_node[u] if z1 == z2)
        if tau_star > 0:
            max_rel_stretch = max(max_rel_stretch, w / (3 * tau_star))
    return rows, len(edges), validity_ok, max_rel_stretch


def bench_dense_phase(benchmark, report):
    rows, n_edges, validity_ok, max_rel_stretch = run_once(benchmark, _run)
    lines = [
        "Lemma 7: dense-node neighbourhood discovery via representatives",
        f"n = {N}, x = {X}; {n_edges} triangle edges generated",
        "",
        format_table(
            ["tau", "covered_blocks", "recall"],
            [[r["tau"], r["covered_blocks"], r["recall"]] for r in rows]),
        "",
        f"all edge weights upper-bound the true distance: {validity_ok}",
        f"max edge weight / (3·tau*) = {max_rel_stretch:.3f}"
        "  (Lemma 7's false-positive bound: must be <= 1)",
    ]
    report("E8_dense_phase", "\n".join(lines))

    assert validity_ok
    assert all(r["recall_ok"] for r in rows)
    assert max_rel_stretch <= 1.0 + 1e-9
