"""E1 — Table 1 row 1: the Ulam-distance algorithm (Theorem 4).

Regenerates the row's claims as measurements:

==================  ========================  =======================
column              paper claim               measured here
==================  ========================  =======================
approximation       1 + ε                     max ratio vs exact DP
rounds              2                         simulator round count
memory/machine      Õ_ε(n^(1-x))              max machine footprint
machines            Õ_ε(n^x)                  max machines per round
total running time  Õ_ε(n)                    DP-cell work counter
==================  ========================  =======================
"""

from repro import UlamConfig, mpc_ulam
from repro.analysis import fit_power_law, format_table
from repro.strings import ulam_distance
from repro.workloads.permutations import planted_pair

from .conftest import run_once

X = 0.4
EPS = 0.5
NS = [128, 256, 512]


def _run_ladder():
    rows = []
    for n in NS:
        s, t, _ = planted_pair(n, n // 16, seed=n, style="mixed")
        res = mpc_ulam(s, t, x=X, eps=EPS, seed=1,
                       config=UlamConfig.default())
        exact = ulam_distance(s, t)
        ratio = res.distance / exact if exact else 1.0
        rows.append({
            "n": n,
            "exact": exact,
            "mpc": res.distance,
            "ratio": ratio,
            "rounds": res.stats.n_rounds,
            "machines": res.stats.max_machines,
            "n^x": round(n ** X, 1),
            "mem_words": res.stats.max_memory_words,
            "mem_cap": res.params.memory_limit,
            "total_work": res.stats.total_work,
        })
    return rows


def bench_table1_row1_ulam(benchmark, report):
    rows = run_once(benchmark, _run_ladder)

    table = format_table(
        ["n", "exact", "mpc", "ratio", "rounds", "machines", "n^x",
         "mem_words", "mem_cap", "total_work"],
        [[r[k] for k in ("n", "exact", "mpc", "ratio", "rounds",
                         "machines", "n^x", "mem_words", "mem_cap",
                         "total_work")] for r in rows])

    machine_fit = fit_power_law([r["n"] for r in rows],
                                [r["machines"] for r in rows])
    work_fit = fit_power_law([r["n"] for r in rows],
                             [r["total_work"] for r in rows])
    lines = [
        "Table 1 row 1 (Theorem 4): 1+eps Ulam, 2 rounds, n^x machines",
        f"x = {X}, eps = {EPS}",
        "",
        table,
        "",
        f"machines ~ n^{machine_fit.exponent:.2f}"
        f"  (paper: n^{X}; r2={machine_fit.r_squared:.3f})",
        f"work     ~ n^{work_fit.exponent:.2f}"
        f"  (paper: n^1 up to the Appendix-A lulam substitution,"
        f" see DESIGN.md; r2={work_fit.r_squared:.3f})",
    ]
    report("E1_table1_ulam", "\n".join(lines))

    # hard assertions: the row's categorical claims
    assert all(r["rounds"] == 2 for r in rows)
    assert all(r["ratio"] <= 1 + EPS for r in rows)
    assert all(r["mem_words"] <= r["mem_cap"] for r in rows)
    assert 0.2 <= machine_fit.exponent <= 0.6  # ~ x = 0.4
