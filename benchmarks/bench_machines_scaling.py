"""E4 — "who wins": machine counts, ours vs HSS'19, measured vs analytic.

The headline of Table 1: the paper's edit-distance algorithm needs
``Õ_ε(n^(9/5·x))`` machines where HSS'19 needs ``Õ_ε(n^2x)`` — a factor
``n^(x/5)``.  This bench runs both implementations over an ``n``-ladder
at the same ``(x, ε)`` and overlays the analytic Table 1 rows, asserting
that "who wins" holds at every measured point.
"""

from repro import mpc_edit_distance
from repro.analysis import fit_power_law, format_table
from repro.baselines import hss_edit_distance, table1_rows
from repro.workloads.strings import planted_pair

from .conftest import run_once

X = 0.29
EPS = 1.0
NS = [128, 256, 512, 1024]


def _run():
    rows = []
    for n in NS:
        s, t, _ = planted_pair(n, max(4, n // 16), sigma=4, seed=n + 1)
        ours = mpc_edit_distance(s, t, x=X, eps=EPS, seed=1)
        hss = hss_edit_distance(s, t, x=X, eps=EPS)
        analytic = {r.reference: r for r in table1_rows(n, X)}
        rows.append({
            "n": n,
            "ours_machines": ours.stats.max_machines,
            "hss_machines": hss.stats.max_machines,
            "measured_ratio": hss.stats.max_machines
            / max(ours.stats.max_machines, 1),
            "analytic_ratio": analytic["HSS'19 [20]"].machines
            / analytic["Theorem 9"].machines,
            "ours_total_mem": sum(
                r.total_input_words for r in ours.stats.rounds),
            "hss_total_mem": sum(
                r.total_input_words for r in hss.stats.rounds),
        })
    return rows


def bench_machines_ours_vs_hss(benchmark, report):
    rows = run_once(benchmark, _run)
    table = format_table(
        ["n", "ours_machines", "hss_machines", "measured_ratio",
         "analytic_ratio(n^(x/5))", "ours_total_mem", "hss_total_mem"],
        [[r["n"], r["ours_machines"], r["hss_machines"],
          r["measured_ratio"], r["analytic_ratio"],
          r["ours_total_mem"], r["hss_total_mem"]] for r in rows])
    ours_fit = fit_power_law([r["n"] for r in rows],
                             [r["ours_machines"] for r in rows])
    hss_fit = fit_power_law([r["n"] for r in rows],
                            [r["hss_machines"] for r in rows])
    lines = [
        "Machine-count comparison (Table 1 'who wins')",
        f"x = {X}: paper exponents — ours 9/5·x = {1.8 * X:.2f},"
        f" HSS 2x = {2 * X:.2f}",
        "",
        table,
        "",
        f"ours machines ~ n^{ours_fit.exponent:.2f}"
        f" (r2={ours_fit.r_squared:.3f})",
        f"HSS  machines ~ n^{hss_fit.exponent:.2f}"
        f" (r2={hss_fit.r_squared:.3f})",
        "",
        "who wins: ours uses fewer machines at every n"
        " and the gap widens with n (exponent gap "
        f"{hss_fit.exponent - ours_fit.exponent:.2f}, paper: x/5 ="
        f" {X / 5:.3f}+)",
    ]
    report("E4_machines_scaling", "\n".join(lines))

    # who-wins must hold pointwise and in the exponent
    assert all(r["ours_machines"] < r["hss_machines"] for r in rows)
    assert ours_fit.exponent < hss_fit.exponent
