"""E10 — the ε tradeoff: accuracy vs work for both algorithms.

Both theorems trade the approximation factor against poly(1/ε) factors in
work, candidates, and communication.  This bench sweeps ε and records
measured ratio (must stay within the guarantee at *every* ε) alongside
total work, confirming:

* ratios never exceed ``1+ε`` (Ulam) / ``3+ε`` (edit distance), and
* work grows as ε shrinks.

It also validates the default ``ε' = ε/4`` bookkeeping of the
edit-distance driver against the paper's ``ε/22`` (the measured ratios
must be within ``3+ε`` for both; see EditConfig.eps_prime_divisor).
"""

from repro import EditConfig, UlamConfig, mpc_edit_distance, mpc_ulam
from repro.analysis import format_table
from repro.strings import levenshtein, ulam_distance
from repro.workloads.permutations import planted_pair as perm_pair
from repro.workloads.strings import planted_pair as str_pair

from .conftest import run_once

N = 256


def _run():
    ulam_rows = []
    s, t, _ = perm_pair(N, N // 8, seed=77, style="mixed")
    exact_u = ulam_distance(s, t)
    for eps in (2.0, 1.0, 0.5):
        res = mpc_ulam(s, t, x=0.4, eps=eps, seed=1,
                       config=UlamConfig.default())
        ulam_rows.append({"eps": eps, "exact": exact_u,
                          "mpc": res.distance,
                          "ratio": res.distance / max(exact_u, 1),
                          "bound": 1 + eps,
                          "work": res.stats.total_work,
                          "tuples": res.n_tuples})

    edit_rows = []
    es, et, _ = str_pair(N, N // 8, sigma=4, seed=78)
    exact_e = levenshtein(es, et)
    for eps in (2.0, 1.0, 0.5):
        for divisor, label in ((4.0, "eps/4"), (22.0, "eps/22")):
            res = mpc_edit_distance(
                es, et, x=0.29, eps=eps, seed=1,
                config=EditConfig(eps_prime_divisor=divisor))
            edit_rows.append({"eps": eps, "eps_prime": label,
                              "exact": exact_e, "mpc": res.distance,
                              "ratio": res.distance / max(exact_e, 1),
                              "bound": 3 + eps,
                              "work": res.stats.total_work})
    return ulam_rows, edit_rows


def bench_epsilon_ablation(benchmark, report):
    ulam_rows, edit_rows = run_once(benchmark, _run)
    lines = [
        "Epsilon ablation: guarantee vs work",
        "",
        "Ulam (Theorem 4, bound 1+eps):",
        format_table(
            ["eps", "exact", "mpc", "ratio", "bound", "work", "tuples"],
            [[r[k] for k in ("eps", "exact", "mpc", "ratio", "bound",
                             "work", "tuples")] for r in ulam_rows]),
        "",
        "Edit distance (Theorem 9, bound 3+eps; eps' divisor ablation):",
        format_table(
            ["eps", "eps_prime", "exact", "mpc", "ratio", "bound",
             "work"],
            [[r[k] for k in ("eps", "eps_prime", "exact", "mpc", "ratio",
                             "bound", "work")] for r in edit_rows]),
    ]
    report("E10_epsilon_ablation", "\n".join(lines))

    assert all(r["ratio"] <= r["bound"] for r in ulam_rows)
    assert all(r["ratio"] <= r["bound"] for r in edit_rows)
    # work increases as eps decreases (Ulam side, strict ladder)
    works = [r["work"] for r in ulam_rows]
    assert works == sorted(works)
