"""E6 — the small/large regime split around ``n^δ = n^(1-x/5)`` (§3.2).

Two measurements:

1. **auto driver across a distance sweep** — which guesses run, which
   regime each guess lands in, and where the driver accepts.  At
   benchable ``n`` the boundary ``n^(1-x/5)`` exceeds ``n/2``, so every
   accepted guess is small-regime (the bench records the boundary to make
   that visible — this is itself a finding documented in EXPERIMENTS.md).
2. **forced large regime at the accepted guess** — the four-round
   machinery (Algorithms 5–7) run on the same far inputs, with its
   approximation ratio and per-round machine counts.
"""

from repro import EditConfig, mpc_edit_distance
from repro.analysis import format_table
from repro.strings import levenshtein
from repro.workloads.strings import block_shuffled_pair, planted_pair

from .conftest import run_once

N = 512
X = 0.29
EPS = 1.0


def _run():
    sweep = []
    for budget in (2, 8, 32, 128, 512):
        s, t, _ = planted_pair(N, budget, sigma=4, seed=budget)
        res = mpc_edit_distance(s, t, x=X, eps=EPS, seed=1)
        exact = levenshtein(s, t)
        sweep.append({
            "planted": budget,
            "exact": exact,
            "mpc": res.distance,
            "ratio": res.distance / max(exact, 1),
            "accepted_guess": res.accepted_guess,
            "regime": res.regime,
            "guesses_run": len(res.per_guess),
        })

    forced = []
    cfg = EditConfig(force_regime="large", max_representatives=16,
                     max_low_degree_samples=8,
                     max_extensions_per_pair_source=8)
    for segs in (4, 16):
        s, t = block_shuffled_pair(N, segs, seed=0)
        res = mpc_edit_distance(s, t, x=X, eps=EPS, seed=1, config=cfg)
        exact = levenshtein(s, t)
        forced.append({
            "segments": segs,
            "exact": exact,
            "mpc": res.distance,
            "ratio": res.distance / max(exact, 1),
            "rounds": res.stats.n_rounds,
            "machines": res.stats.max_machines,
        })
    return sweep, forced


def bench_regime_split(benchmark, report):
    sweep, forced = run_once(benchmark, _run)
    boundary = round(N ** (1 - X / 5))
    lines = [
        f"Regime split at n = {N}, x = {X}:"
        f" boundary n^(1-x/5) = {boundary}"
        f" (exceeds n/2={N // 2} -> auto driver accepts in the small"
        " regime at this scale)",
        "",
        "auto driver, planted-distance sweep:",
        format_table(
            ["planted", "exact", "mpc", "ratio", "accepted_guess",
             "regime", "guesses_run"],
            [[r[k] for k in ("planted", "exact", "mpc", "ratio",
                             "accepted_guess", "regime", "guesses_run")]
             for r in sweep]),
        "",
        "forced large regime (Algorithms 5-7, 4 rounds) on far pairs:",
        format_table(
            ["segments", "exact", "mpc", "ratio", "rounds", "machines"],
            [[r[k] for k in ("segments", "exact", "mpc", "ratio",
                             "rounds", "machines")] for r in forced]),
    ]
    report("E6_regime_split", "\n".join(lines))

    assert all(r["ratio"] <= 3 + EPS for r in sweep)
    assert all(r["ratio"] <= 3 + EPS for r in forced)
    assert all(r["rounds"] == 4 for r in forced)
    # accepted guess grows with the planted distance
    accepted = [r["accepted_guess"] for r in sweep]
    assert accepted == sorted(accepted)
