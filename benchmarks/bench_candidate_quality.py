"""E7 — Lemma 3: candidate quality and the w.h.p. guarantee.

Lemma 3 promises that, with high probability over the hitting-set coins,
every block gets an approximately-optimal candidate.  Two measurements:

* **per-block optimality** — for every block, the best candidate distance
  equals the block's true local optimum (`lulam`); and
* **end-to-end success rate** — across many independent seeds, the final
  answer stays within ``1+ε`` of the exact distance (the "w.h.p." of
  Theorem 4 made empirical).
"""

from repro import UlamConfig, mpc_ulam
from repro.analysis import format_table
from repro.strings import local_ulam, ulam_distance
from repro.workloads.permutations import block_shuffled_pair, planted_pair

from .conftest import run_once

N = 256
X = 0.4
EPS = 0.5
SEEDS = 12


def _run():
    # per-block candidate optimality on one instance
    s, t, _ = planted_pair(N, N // 16, seed=99, style="mixed")
    res = mpc_ulam(s, t, x=X, eps=EPS, seed=0, keep_tuples=True,
                   config=UlamConfig.default())
    B = res.params.block_size
    per_block = []
    for lo in range(0, N, B):
        hi = min(lo + B, N)
        mine = [d for (l, h, sp, ep, d) in res.tuples if l == lo]
        _, _, d_star = local_ulam(s[lo:hi], t)
        per_block.append({"block": lo // B, "n_tuples": len(mine),
                          "best_candidate": min(mine),
                          "lulam_optimum": d_star,
                          "optimal": min(mine) == d_star})

    # seed sweep: success probability of the end-to-end guarantee
    workloads = {
        "planted_moves": planted_pair(N, N // 8, seed=1, style="moves")[:2],
        "planted_swaps": planted_pair(N, N // 8, seed=2, style="swaps")[:2],
        "shuffled": block_shuffled_pair(N, 8, seed=3),
    }
    sweep = []
    for name, (ws, wt) in workloads.items():
        exact = ulam_distance(ws, wt)
        ok = 0
        worst = 0.0
        for seed in range(SEEDS):
            out = mpc_ulam(ws, wt, x=X, eps=EPS, seed=seed,
                           config=UlamConfig.default())
            ratio = out.distance / max(exact, 1)
            worst = max(worst, ratio)
            ok += ratio <= 1 + EPS
        sweep.append({"workload": name, "exact": exact,
                      "success": f"{ok}/{SEEDS}", "worst_ratio": worst})
    return per_block, sweep


def bench_candidate_quality(benchmark, report):
    per_block, sweep = run_once(benchmark, _run)
    lines = [
        "Lemma 3 candidate quality (per block) and Theorem 4 w.h.p."
        " success rate",
        "",
        format_table(
            ["block", "n_tuples", "best_candidate", "lulam_optimum",
             "optimal"],
            [[r[k] for k in ("block", "n_tuples", "best_candidate",
                             "lulam_optimum", "optimal")]
             for r in per_block]),
        "",
        f"seed sweep ({SEEDS} seeds per workload):",
        format_table(
            ["workload", "exact", "success", "worst_ratio"],
            [[r[k] for k in ("workload", "exact", "success",
                             "worst_ratio")] for r in sweep]),
    ]
    report("E7_candidate_quality", "\n".join(lines))

    assert all(r["optimal"] for r in per_block)
    assert all(r["worst_ratio"] <= 1 + EPS for r in sweep)
