"""E17 — the LIS extension (Ulam's dual; cf. Im–Moseley–Sun in §1).

Validates ``repro.extensions.mpc_lis``: certified lower bound, additive
``≤ 2ε·n`` error, 2 rounds, across structure classes and an ``n``-ladder.
"""

import numpy as np

from repro.analysis import format_table
from repro.extensions import mpc_lis
from repro.strings import lis_length
from repro.workloads.permutations import (apply_moves, block_shuffled_pair,
                                          random_permutation)

from .conftest import run_once

X = 0.3
EPS = 0.25


def _run():
    rows = []
    for n in (128, 256, 512):
        for label, seq in {
            "sorted": np.arange(n),
            "near-sorted": apply_moves(np.arange(n), n // 16, seed=1),
            "segment-shuffled": block_shuffled_pair(n, 8, seed=2)[1],
            "random": random_permutation(n, seed=3),
            "reversed": np.arange(n)[::-1].copy(),
        }.items():
            res = mpc_lis(seq, x=X, eps=EPS)
            exact = lis_length(seq)
            rows.append({
                "n": n, "structure": label, "exact": exact,
                "mpc": res.lis, "additive_gap": exact - res.lis,
                "bound_2eps_n": int(2 * EPS * n),
                "K": res.n_buckets, "rounds": res.stats.n_rounds,
            })
    return rows


def bench_lis_extension(benchmark, report):
    rows = run_once(benchmark, _run)
    lines = [
        "LIS extension: certified lower bound, additive <= 2*eps*n, "
        "2 rounds",
        f"x = {X}, eps = {EPS}",
        "",
        format_table(
            ["n", "structure", "exact", "mpc", "additive_gap",
             "bound_2eps_n", "K", "rounds"],
            [[r[k] for k in ("n", "structure", "exact", "mpc",
                             "additive_gap", "bound_2eps_n", "K",
                             "rounds")] for r in rows]),
    ]
    report("E17_lis_extension", "\n".join(lines))

    for r in rows:
        assert r["mpc"] <= r["exact"]
        assert r["additive_gap"] <= r["bound_2eps_n"]
        assert r["rounds"] == 2
