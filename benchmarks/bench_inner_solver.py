"""E11 — inner-solver ablation (§5.1: exact DP vs the [12]-variant).

The paper's small-distance phase pays a ``3+ε`` factor because it solves
block-vs-candidate distances with a subquadratic CGKS-style solver
instead of the exact DP.  This bench runs the same instances under every
inner solver and reports the measured accuracy/work trade:

* ``row``    — shared-DP-row exact solver (our default),
* ``banded`` — Ukkonen exact solver (per pair),
* ``cgks``   — the windowed ``3+ε``-style solver (paper configuration).

It also characterises the standalone cgks kernel against exact distances
across workload classes.
"""

import time

import numpy as np

from repro import EditConfig, mpc_edit_distance
from repro.analysis import format_table
from repro.strings import cgks_edit_upper_bound, levenshtein
from repro.workloads.strings import planted_pair, random_string

from .conftest import run_once

N = 256
X = 0.29
EPS = 1.0


def _run():
    driver_rows = []
    s, t, _ = planted_pair(N, N // 8, sigma=4, seed=55)
    exact = levenshtein(s, t)
    for inner in ("row", "banded", "cgks"):
        t0 = time.perf_counter()
        res = mpc_edit_distance(s, t, x=X, eps=EPS, seed=1,
                                config=EditConfig(inner=inner))
        driver_rows.append({
            "inner": inner, "exact": exact, "mpc": res.distance,
            "ratio": res.distance / max(exact, 1),
            "work": res.stats.total_work,
            "wall_s": time.perf_counter() - t0})

    kernel_rows = []
    for label, (a, b) in {
        "planted_d=8": planted_pair(200, 8, sigma=4, seed=1)[:2],
        "planted_d=40": planted_pair(200, 40, sigma=4, seed=2)[:2],
        "random": (random_string(200, 4, seed=3),
                   random_string(200, 4, seed=4)),
    }.items():
        ex = levenshtein(a, b)
        up = cgks_edit_upper_bound(a, b, eps=0.5)
        kernel_rows.append({"workload": label, "exact": ex, "cgks": up,
                            "ratio": up / max(ex, 1)})
    return driver_rows, kernel_rows


def bench_inner_solver(benchmark, report):
    driver_rows, kernel_rows = run_once(benchmark, _run)
    lines = [
        "Inner-solver ablation (small-distance phase 1)",
        "",
        format_table(
            ["inner", "exact", "mpc", "ratio", "work", "wall_s"],
            [[r[k] for k in ("inner", "exact", "mpc", "ratio", "work",
                             "wall_s")] for r in driver_rows]),
        "",
        "standalone cgks kernel vs exact (eps = 0.5):",
        format_table(
            ["workload", "exact", "cgks", "ratio"],
            [[r[k] for k in ("workload", "exact", "cgks", "ratio")]
             for r in kernel_rows]),
        "",
        "the exact inners certify 1+eps for the small regime; cgks is"
        " the paper's subquadratic configuration within its 3+eps"
        " budget",
    ]
    report("E11_inner_solver", "\n".join(lines))

    for r in driver_rows:
        assert r["ratio"] <= 3 + EPS
    exact_answers = {r["mpc"] for r in driver_rows
                     if r["inner"] in ("row", "banded")}
    assert len(exact_answers) == 1  # both exact inners agree
    for r in kernel_rows:
        assert r["ratio"] >= 1.0  # upper bound, never below exact
