"""E22 — zero-copy data plane: physical payload bytes and cache hits.

The MPC ledgers price *logical words*, and the data plane leaves every
one of them untouched; what it shrinks is the *physical* pickle volume
crossing the executor boundary — O(substring bytes) per task down to
O(descriptor).  This experiment measures that gap A/B on the Table-1
configurations (E16's ulam and edit rows), plus the distance cache's
hit behaviour on the edit small-regime workload:

* ``bytes_shipped`` with the plane off vs on — the gate asserts the
  descriptor runs ship at most half the copy runs' bytes (>= 2x
  reduction), and that the ledgers are byte-identical either way;
* ``distance_cache.hits`` > 0 when the cache is enabled on a repeated
  edit small-regime workload, with unchanged answers;
* wall clocks for both modes, informational only (the byte counts are
  deterministic; the clocks are not).
"""

import time

from repro import mpc_edit_distance, mpc_ulam
from repro.analysis import format_table
from repro.metrics import enabled
from repro.mpc import (active_segments, disable_distance_cache,
                       enable_distance_cache)
from repro.workloads.permutations import planted_pair as perm_pair
from repro.workloads.strings import planted_pair as str_pair

from .conftest import run_once

#: The committed Table-1 baseline configurations (BENCH_table1.json).
ULAM = dict(n=256, budget=8, x=0.4, eps=0.5, seed=0)
EDIT = dict(n=128, budget=4, x=0.25, eps=1.0, seed=0)


def _ulam(data_plane):
    s, t, _ = perm_pair(ULAM["n"], ULAM["budget"], seed=ULAM["seed"],
                        style="mixed")
    t0 = time.perf_counter()
    with enabled():
        res = mpc_ulam(s, t, x=ULAM["x"], eps=ULAM["eps"],
                       seed=ULAM["seed"], data_plane=data_plane)
    return res, time.perf_counter() - t0


def _edit(data_plane):
    s, t, _ = str_pair(EDIT["n"], EDIT["budget"], sigma=4,
                       seed=EDIT["seed"])
    t0 = time.perf_counter()
    with enabled():
        res = mpc_edit_distance(s, t, x=EDIT["x"], eps=EDIT["eps"],
                                seed=EDIT["seed"], data_plane=data_plane)
    return res, time.perf_counter() - t0


def _ledger(res):
    out = res.stats.summary()
    return {k: out[k] for k in ("total_work", "parallel_work",
                                "total_communication_words",
                                "max_memory_words", "rounds")}


def _run():
    rows = []
    checks = {}
    for tag, fn in (("ulam", _ulam), ("edit", _edit)):
        off, off_s = fn(data_plane=False)
        on, on_s = fn(data_plane=True)
        assert active_segments() == frozenset()
        shipped_off = off.stats.payload_bytes
        shipped_on = on.stats.payload_bytes
        rows.append([tag, "copy", shipped_off,
                     off.stats.payload_bytes_avoided, off.distance,
                     f"{off_s:.3f}"])
        rows.append([tag, "descriptor", shipped_on,
                     on.stats.payload_bytes_avoided, on.distance,
                     f"{on_s:.3f}"])
        checks[tag] = {
            "reduction": shipped_off / shipped_on,
            "same_answer": on.distance == off.distance,
            "same_ledger": _ledger(on) == _ledger(off),
            "avoided_on": on.stats.payload_bytes_avoided,
        }

    # Distance cache on the edit small-regime workload: a repeated run
    # re-derives the same (block, candidate) contents, so the second
    # pass must hit.
    s, t, _ = str_pair(EDIT["n"], EDIT["budget"], sigma=4,
                       seed=EDIT["seed"])
    baseline = mpc_edit_distance(s, t, x=EDIT["x"], eps=EDIT["eps"],
                                 seed=EDIT["seed"])
    cache = enable_distance_cache()
    try:
        first = mpc_edit_distance(s, t, x=EDIT["x"], eps=EDIT["eps"],
                                  seed=EDIT["seed"])
        second = mpc_edit_distance(s, t, x=EDIT["x"], eps=EDIT["eps"],
                                   seed=EDIT["seed"])
        checks["cache"] = {
            "hits": cache.hits,
            "misses": cache.misses,
            "same_answer": (first.distance == baseline.distance
                            and second.distance == baseline.distance),
        }
    finally:
        disable_distance_cache()
    return rows, checks


def bench_data_plane(benchmark, report):
    rows, checks = run_once(benchmark, _run)
    lines = [
        "Physical payload bytes: copy payloads vs data-plane descriptors",
        f"(ulam n={ULAM['n']} x={ULAM['x']} eps={ULAM['eps']}; "
        f"edit n={EDIT['n']} x={EDIT['x']} eps={EDIT['eps']}; "
        "Table-1 baseline configs, seed 0)",
        "",
        format_table(["algorithm", "payloads", "bytes_shipped",
                      "bytes_avoided", "answer", "wall_s"], rows),
        "",
        f"reduction: ulam {checks['ulam']['reduction']:.1f}x, "
        f"edit {checks['edit']['reduction']:.1f}x "
        "(logical ledgers byte-identical in all four runs)",
        f"distance cache on repeated edit small-regime run: "
        f"{checks['cache']['hits']} hits / "
        f"{checks['cache']['misses']} misses, answers unchanged",
        "",
        "wall_s is informational; bytes are deterministic and gated "
        "(>= 2x reduction required).",
    ]
    report("E22_data_plane", "\n".join(lines))

    for tag in ("ulam", "edit"):
        assert checks[tag]["reduction"] >= 2.0, (tag, checks[tag])
        assert checks[tag]["same_answer"], tag
        assert checks[tag]["same_ledger"], tag
        assert checks[tag]["avoided_on"] > 0, tag
    assert checks["cache"]["hits"] > 0, checks["cache"]
    assert checks["cache"]["same_answer"], checks["cache"]
