"""E3 — Table 1 row 4: the HSS'19 baseline.

Measures the prior-work row we implemented: ``1+ε`` approximation, 2
rounds, ``Õ_ε(n^2x)`` machines — the machine count our algorithm improves
on (E4 overlays the two curves).
"""

from repro.analysis import fit_power_law, format_table
from repro.baselines import hss_edit_distance
from repro.strings import levenshtein
from repro.workloads.strings import planted_pair

from .conftest import run_once

X = 0.29
EPS = 1.0
NS = [128, 256, 512, 1024]


def _run_ladder():
    rows = []
    for n in NS:
        s, t, _ = planted_pair(n, max(4, n // 16), sigma=4, seed=n)
        res = hss_edit_distance(s, t, x=X, eps=EPS)
        exact = levenshtein(s, t)
        rows.append({
            "n": n,
            "exact": exact,
            "hss": res.distance,
            "ratio": res.distance / max(exact, 1),
            "rounds": res.stats.n_rounds,
            "machines": res.stats.max_machines,
            "n^2x": round(n ** (2 * X), 1),
            "mem_words": res.stats.max_memory_words,
            "total_work": res.stats.total_work,
        })
    return rows


def bench_table1_row4_hss(benchmark, report):
    rows = run_once(benchmark, _run_ladder)
    table = format_table(
        ["n", "exact", "hss", "ratio", "rounds", "machines", "n^2x",
         "mem_words", "total_work"],
        [[r[k] for k in ("n", "exact", "hss", "ratio", "rounds",
                         "machines", "n^2x", "mem_words", "total_work")]
         for r in rows])
    machine_fit = fit_power_law([r["n"] for r in rows],
                                [r["machines"] for r in rows])
    lines = [
        "Table 1 row 4 (HSS SODA'19): 1+eps edit distance, 2 rounds,"
        " n^2x machines",
        f"x = {X}, eps = {EPS}",
        "",
        table,
        "",
        f"machines ~ n^{machine_fit.exponent:.2f}"
        f"  (paper: n^{2 * X:.2f}; r2={machine_fit.r_squared:.3f})",
    ]
    report("E3_table1_baseline_hss", "\n".join(lines))

    assert all(r["ratio"] <= 1 + EPS for r in rows)
    assert all(r["rounds"] == 2 for r in rows)
