"""E9 — the Õ_ε(1) candidate-count formula of §3.1.

The paper bounds the expected number of candidate substrings per block by
``[1 + log_(1+ε')n · (1 + B·(8/ε'B)·log n)(1/ε')](1/ε') = Õ_ε(1)`` —
constant in ``n`` (up to polylog), polynomial in ``1/ε``.  This bench
measures the per-block candidate counts of Algorithm 1 across an
``n``-ladder and an ``ε``-ladder and fits the growth in each direction.
"""

import numpy as np

from repro.analysis import fit_power_law, format_table
from repro.params import UlamParams
from repro.ulam import UlamConfig, make_block_payload, run_block_machine
from repro.workloads.permutations import planted_pair

from .conftest import run_once

X = 0.4


def _count_for(n, eps, seed=0):
    s, t, _ = planted_pair(n, n // 8, seed=seed, style="mixed")
    params = UlamParams(n=n, x=X, eps=eps)
    cfg = UlamConfig.paper()  # no caps: measure the raw construction
    pos_t = {int(v): i for i, v in enumerate(t.tolist())}
    counts = []
    B = params.block_size
    for lo in range(0, n, B):
        hi = min(lo + B, n)
        positions = np.array([pos_t.get(int(v), -1) for v in s[lo:hi]],
                             dtype=np.int64)
        payload = make_block_payload(lo, hi, positions, n,
                                     params.eps_prime, params.u_guesses(),
                                     params.hitting_rate, seed, cfg)
        counts.append(len(run_block_machine(payload)))
    return float(np.mean(counts))


def _run():
    n_rows = [{"n": n, "eps": 1.0,
               "candidates_per_block": _count_for(n, 1.0)}
              for n in (128, 256, 512)]
    eps_rows = [{"n": 256, "eps": e,
                 "candidates_per_block": _count_for(256, e)}
                for e in (2.0, 1.0, 0.5)]
    return n_rows, eps_rows


def bench_candidate_counts(benchmark, report):
    n_rows, eps_rows = run_once(benchmark, _run)
    n_fit = fit_power_law([r["n"] for r in n_rows],
                          [r["candidates_per_block"] for r in n_rows])
    eps_fit = fit_power_law([1 / r["eps"] for r in eps_rows],
                            [r["candidates_per_block"] for r in eps_rows])
    lines = [
        "Candidate substrings per block (§3.1: Õ_ε(1) — constant in n,"
        " poly(1/ε))",
        "",
        "n-ladder (eps = 1.0):",
        format_table(["n", "candidates_per_block"],
                     [[r["n"], r["candidates_per_block"]]
                      for r in n_rows]),
        "",
        "eps-ladder (n = 256):",
        format_table(["eps", "candidates_per_block"],
                     [[r["eps"], r["candidates_per_block"]]
                      for r in eps_rows]),
        "",
        f"growth in n      ~ n^{n_fit.exponent:.2f}"
        "  (paper: n^0 up to polylog)",
        f"growth in 1/eps  ~ (1/eps)^{eps_fit.exponent:.2f}"
        "  (paper: polynomial, up to (1/eps)^4·log n)",
    ]
    report("E9_candidate_counts", "\n".join(lines))

    # constant-in-n up to polylog: exponent well below any polynomial
    assert n_fit.exponent < 0.5
    # strongly increasing in 1/eps
    assert eps_fit.exponent > 0.5
