"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` module regenerates one experiment of EXPERIMENTS.md
(E1–E13).  Benchmarks print their paper-style tables *and* persist them
under ``benchmarks/results/`` so the output survives pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Callable fixture: ``report(experiment_id, text)`` prints the block
    and writes it to ``benchmarks/results/<experiment_id>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(experiment_id: str, text: str) -> None:
        banner = f"\n=== {experiment_id} ===\n{text}\n"
        print(banner)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n")

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive driver exactly once under pytest-benchmark.

    The MPC drivers take seconds per call; timing them with the default
    calibrating loop would multiply the suite's runtime for no insight.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
