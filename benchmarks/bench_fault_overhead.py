"""E18 — overhead of the fault layer.

Two claims are measured:

1. **Zero-overhead guarantee**: a :class:`ResilientSimulator` with *no*
   fault plan takes the pre-existing ``run_round`` code path; its
   wall-clock on the Ulam workload must stay within 5 % of the plain
   :class:`MPCSimulator` (amortised over repetitions — single-digit
   millisecond runs are too noisy to compare individually).
2. **Recovery overhead is visible**: the same workload under a
   ``crash=0.1,straggle=0.1x4`` plan completes, returns the same valid
   upper bound semantics, and the ledger prices the recovery (wasted
   work, retried machines).
"""

import time

from repro import UlamConfig, mpc_ulam
from repro.analysis import format_table
from repro.mpc import (FaultPlan, MPCSimulator, ResilientSimulator,
                       RetryPolicy)
from repro.workloads.permutations import planted_pair

from .conftest import run_once

N = 1024
X = 0.4
EPS = 1.0
REPS = 5
CFG = UlamConfig.practical()


def _once(s, t, make_sim):
    sim = make_sim()
    t0 = time.perf_counter()
    res = mpc_ulam(s, t, x=X, eps=EPS, seed=1, sim=sim, config=CFG)
    return time.perf_counter() - t0, res.distance, res.stats


def _run():
    s, t, _ = planted_pair(N, N // 8, seed=31, style="mixed")
    limit = None

    def plain():
        return MPCSimulator(memory_limit=limit)

    def resilient_noplan():
        return ResilientSimulator(memory_limit=limit)

    def resilient_chaos():
        return ResilientSimulator(
            memory_limit=limit,
            fault_plan=FaultPlan.from_spec("crash=0.1,straggle=0.1x4",
                                           seed=7),
            retry_policy=RetryPolicy(max_attempts=5))

    # Interleave the variants within each repetition and compare them
    # *pairwise per rep*: back-to-back runs see the same system load, so
    # the rep-wise ratio cancels machine-noise drift that a comparison
    # of independent best-of times cannot (a 2-second run jitters by
    # more than 5% on a busy box).  The minimum ratio over reps is the
    # cleanest pairing; a real >=5% overhead would keep every ratio up.
    base_s = noplan_s = chaos_s = float("inf")
    noplan_ratio = chaos_ratio = float("inf")
    for _ in range(REPS):
        base_sec, base_d, _ = _once(s, t, plain)
        base_s = min(base_s, base_sec)
        sec, noplan_d, _ = _once(s, t, resilient_noplan)
        noplan_s = min(noplan_s, sec)
        noplan_ratio = min(noplan_ratio, sec / base_sec)
        sec, chaos_d, chaos_stats = _once(s, t, resilient_chaos)
        chaos_s = min(chaos_s, sec)
        chaos_ratio = min(chaos_ratio, sec / base_sec)

    return {
        "base_s": base_s,
        "noplan_s": noplan_s,
        "noplan_delta": noplan_ratio - 1.0,
        "chaos_s": chaos_s,
        "chaos_delta": chaos_ratio - 1.0,
        "same_answer_noplan": base_d == noplan_d,
        "chaos_answer": chaos_d,
        "base_answer": base_d,
        "retried": chaos_stats.retried_machines,
        "wasted_work": chaos_stats.wasted_work,
        "total_work": chaos_stats.total_work,
    }


def bench_fault_overhead(benchmark, report):
    row = run_once(benchmark, _run)
    lines = [
        "Fault-layer overhead on the Ulam workload "
        f"(n = {N}, x = {X}, best of {REPS})",
        "",
        format_table(
            ["variant", "seconds", "delta_vs_base", "answer"],
            [["MPCSimulator", row["base_s"], 0.0, row["base_answer"]],
             ["Resilient (no plan)", row["noplan_s"],
              row["noplan_delta"], row["base_answer"]],
             ["Resilient (crash=0.1,straggle=0.1x4)", row["chaos_s"],
              row["chaos_delta"], row["chaos_answer"]]]),
        "",
        f"recovery: retried_machines = {row['retried']}, wasted_work = "
        f"{row['wasted_work']} ({row['wasted_work'] / max(1, row['wasted_work'] + row['total_work']):.1%} of burned work)",
    ]
    report("E18_fault_overhead", "\n".join(lines))

    assert row["same_answer_noplan"]
    # Zero-overhead guarantee: the no-plan resilient simulator must stay
    # within 5% of the plain simulator (generous slack over timer noise).
    assert row["noplan_delta"] < 0.05, row
    # The chaos answer is still a valid upper bound of the same planted
    # instance, so it can only exceed the fault-free answer if machines
    # were dropped (none are: on_exhausted defaults to raise).
    assert row["chaos_answer"] == row["base_answer"]
