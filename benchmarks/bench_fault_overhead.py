"""E18 — overhead of the fault layer.

Two claims are measured:

1. **Zero-overhead guarantee**: a :class:`ResilientSimulator` with *no*
   fault plan takes the pre-existing ``run_round`` code path; its
   wall-clock on the Ulam workload must stay within 5 % of the plain
   :class:`MPCSimulator` (amortised over repetitions — single-digit
   millisecond runs are too noisy to compare individually).
2. **Recovery overhead is visible**: the same workload under a
   ``crash=0.1,straggle=0.1x4`` plan completes, returns the same valid
   upper bound semantics, and the ledger prices the recovery (wasted
   work, retried machines).
"""

import time

from repro import UlamConfig, mpc_ulam
from repro.analysis import format_table
from repro.mpc import (FaultPlan, MPCSimulator, ResilientSimulator,
                       RetryPolicy)
from repro.workloads.permutations import planted_pair

from .conftest import run_once

N = 1024
X = 0.4
EPS = 1.0
REPS = 3
CFG = UlamConfig.practical()


def _timed(s, t, make_sim):
    best = float("inf")
    distance = None
    stats = None
    for _ in range(REPS):
        sim = make_sim()
        t0 = time.perf_counter()
        res = mpc_ulam(s, t, x=X, eps=EPS, seed=1, sim=sim, config=CFG)
        best = min(best, time.perf_counter() - t0)
        distance, stats = res.distance, res.stats
    return best, distance, stats


def _run():
    s, t, _ = planted_pair(N, N // 8, seed=31, style="mixed")
    limit = None

    def plain():
        return MPCSimulator(memory_limit=limit)

    def resilient_noplan():
        return ResilientSimulator(memory_limit=limit)

    def resilient_chaos():
        return ResilientSimulator(
            memory_limit=limit,
            fault_plan=FaultPlan.from_spec("crash=0.1,straggle=0.1x4",
                                           seed=7),
            retry_policy=RetryPolicy(max_attempts=5))

    base_s, base_d, _ = _timed(s, t, plain)
    noplan_s, noplan_d, _ = _timed(s, t, resilient_noplan)
    chaos_s, chaos_d, chaos_stats = _timed(s, t, resilient_chaos)

    return {
        "base_s": base_s,
        "noplan_s": noplan_s,
        "noplan_delta": noplan_s / base_s - 1.0,
        "chaos_s": chaos_s,
        "chaos_delta": chaos_s / base_s - 1.0,
        "same_answer_noplan": base_d == noplan_d,
        "chaos_answer": chaos_d,
        "base_answer": base_d,
        "retried": chaos_stats.retried_machines,
        "wasted_work": chaos_stats.wasted_work,
        "total_work": chaos_stats.total_work,
    }


def bench_fault_overhead(benchmark, report):
    row = run_once(benchmark, _run)
    lines = [
        "Fault-layer overhead on the Ulam workload "
        f"(n = {N}, x = {X}, best of {REPS})",
        "",
        format_table(
            ["variant", "seconds", "delta_vs_base", "answer"],
            [["MPCSimulator", row["base_s"], 0.0, row["base_answer"]],
             ["Resilient (no plan)", row["noplan_s"],
              row["noplan_delta"], row["base_answer"]],
             ["Resilient (crash=0.1,straggle=0.1x4)", row["chaos_s"],
              row["chaos_delta"], row["chaos_answer"]]]),
        "",
        f"recovery: retried_machines = {row['retried']}, wasted_work = "
        f"{row['wasted_work']} ({row['wasted_work'] / max(1, row['wasted_work'] + row['total_work']):.1%} of burned work)",
    ]
    report("E18_fault_overhead", "\n".join(lines))

    assert row["same_answer_noplan"]
    # Zero-overhead guarantee: the no-plan resilient simulator must stay
    # within 5% of the plain simulator (generous slack over timer noise).
    assert row["noplan_delta"] < 0.05, row
    # The chaos answer is still a valid upper bound of the same planted
    # instance, so it can only exceed the fault-free answer if machines
    # were dropped (none are: on_exhausted defaults to raise).
    assert row["chaos_answer"] == row["base_answer"]
