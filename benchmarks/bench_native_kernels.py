"""E27 — native/batched kernel backends vs the pure scalar path.

The strings kernels dispatch through :mod:`repro.strings.native`: with
numba present the inner DP loops are compiled; without it (this gate's
container) the *batch* backend still replaces thousands of per-call
scalar kernel invocations with a handful of vectorised NumPy batch
calls.  The contract is that backends differ **only in wall-clock**:
distances, work ledgers, ``strings.dp_cells`` metering and kernel-probe
call/cell attribution are byte-identical.

This experiment drives the real workloads through both backends:

* kernel-level — the exact sparse-Ulam jobs an E13 run issues, the
  exact doubling pairs a large-regime edit run issues, and an
  E22-shaped banded-threshold batch, each timed pure vs batch with
  identical results/ledgers asserted;
* end-to-end — the E13 ``mpc_ulam`` workload pure vs batch with the
  full ledger, metrics delta and profile calls/cells compared
  byte-for-byte, plus a profdiff-style attribution naming the
  accelerated kernel.

Gates: >= 10x on the banded-threshold kernel batch (the scalar path is
a per-row python loop, so batching wins big), conservative floors on
the already-NumPy sparse/doubling paths (~2-3x measured), >= 1.3x
end-to-end on E13, and strict equality everywhere.  With numba
installed the compiled paths raise all of these further.
"""

import time

import numpy as np

import repro.ulam.candidates as cand
import repro.editdistance.large as elarge
from repro import UlamConfig, mpc_ulam
from repro.analysis import format_table
from repro.editdistance.config import EditConfig
from repro.editdistance.large import large_distance_upper_bound
from repro.metrics import enabled, scoped_snapshot
from repro.mpc import MPCSimulator
from repro.mpc.accounting import WorkMeter
from repro.obs import profile as obs_profile
from repro.obs.profile import diff_profiles, totals_from_rows
from repro.params import EditParams
from repro.strings import (kernel_backend, levenshtein_doubling_batch,
                           ulam_auto_batch, use_backend,
                           within_threshold_batch)
from repro.workloads.permutations import planted_pair as perm_pair
from repro.workloads.strings import block_shuffled_pair

from .conftest import run_once

#: The E13 workload (bench_executor_speedup): ulam, 1024 symbols.
E13 = dict(n=1024, x=0.4, eps=1.0, seed=1, input_seed=31)

#: E22-shaped banded-threshold batch: sigma-4 blocks near the edit
#: small-regime block length, small planted distances, tau = 8.
E22_PAIRS = 300
E22_LEN = 96
E22_TAU = 8

#: Large-regime edit workload issuing real doubling-solver batches
#: (the golden edit_large case scaled up to produce enough pairs).
EDIT_LARGE = dict(n=384, budget=8, x=0.29, guess=48, seed=2)


def _timed(fn, backend):
    """Run *fn* under *backend* with full metering; returns
    ``(result, work_units, metrics_delta, seconds)``."""
    with use_backend(backend):
        with enabled(), obs_profile.enabled():
            with scoped_snapshot() as scope, WorkMeter() as meter:
                t0 = time.perf_counter()
                result = fn()
                dt = time.perf_counter() - t0
    return result, meter.total, scope.delta(), dt


def _capture_ulam_jobs():
    """The sparse-Ulam jobs a real E13 run issues to the batch kernel."""
    jobs = []
    real = cand.ulam_auto_batch

    def record(batch):
        jobs.extend(batch)
        return real(batch)

    cand.ulam_auto_batch = record
    try:
        s, t, _ = perm_pair(E13["n"], E13["n"] // 8,
                            seed=E13["input_seed"], style="mixed")
        mpc_ulam(s, t, x=E13["x"], eps=E13["eps"], seed=E13["seed"],
                 config=UlamConfig.practical())
    finally:
        cand.ulam_auto_batch = real
    return jobs


def _capture_doubling_jobs():
    """The pair jobs a large-regime edit run hands the doubling batch."""
    jobs = []
    real = elarge.levenshtein_doubling_batch

    def record(batch):
        jobs.extend(batch)
        return real(batch)

    elarge.levenshtein_doubling_batch = record
    try:
        s, t = block_shuffled_pair(EDIT_LARGE["n"], EDIT_LARGE["budget"],
                                   seed=5)
        params = EditParams(n=EDIT_LARGE["n"], x=EDIT_LARGE["x"],
                            eps=1.0, eps_prime_divisor=4)
        cfg = EditConfig(max_representatives=16,
                         max_low_degree_samples=8,
                         max_extensions_per_pair_source=8)
        sim = MPCSimulator(memory_limit=params.memory_limit)
        large_distance_upper_bound(s, t, params,
                                   guess=EDIT_LARGE["guess"], sim=sim,
                                   config=cfg, seed=EDIT_LARGE["seed"])
    finally:
        elarge.levenshtein_doubling_batch = real
    return jobs


def _e22_threshold_pairs():
    rng = np.random.default_rng(7)
    pairs = []
    for _ in range(E22_PAIRS):
        a = rng.integers(0, 4, size=E22_LEN).astype(np.int64)
        b = a.copy()
        for _ in range(int(rng.integers(0, E22_TAU))):
            b[int(rng.integers(0, E22_LEN))] = int(rng.integers(0, 4))
        pairs.append((a, b))
    return pairs


def _kernel_case(name, fn):
    """Time *fn* pure vs ambient; assert byte-identical accounting."""
    res_p, work_p, met_p, sec_p = _timed(fn, "pure")
    res_b, work_b, met_b, sec_b = _timed(fn, None)
    assert list(res_p) == list(res_b), name
    assert work_p == work_b, (name, work_p, work_b)
    assert met_p == met_b, name
    return {"name": name, "pure_s": sec_p, "batch_s": sec_b,
            "speedup": sec_p / sec_b if sec_b > 0 else float("inf")}


def _ledger(res):
    out = dict(res.stats.summary())
    out.pop("wall_seconds", None)
    profile = out.pop("metrics", None), out.pop("profile", None)
    return out, profile


def _end_to_end():
    s, t, _ = perm_pair(E13["n"], E13["n"] // 8, seed=E13["input_seed"],
                        style="mixed")
    cfg = UlamConfig.practical()

    def run():
        return mpc_ulam(s, t, x=E13["x"], eps=E13["eps"],
                        seed=E13["seed"], config=cfg)

    res_p, _, met_p, sec_p = _timed(run, "pure")
    res_b, _, met_b, sec_b = _timed(run, None)
    ledger_p, (metrics_p, prof_p) = _ledger(res_p)
    ledger_b, (metrics_b, prof_b) = _ledger(res_b)
    cells_p = {k: v for k, v in met_p.items() if k.startswith("strings.")}
    cells_b = {k: v for k, v in met_b.items() if k.startswith("strings.")}

    def strip_seconds(rows):
        return sorted(({"kernel": r["kernel"], "calls": r["calls"],
                        "cells": r["cells"]} for r in rows or []),
                      key=lambda r: r["kernel"])

    checks = {
        "same_answer": res_p.distance == res_b.distance,
        "same_ledger": ledger_p == ledger_b,
        "same_metrics": met_p == met_b,
        "same_dp_cells": cells_p == cells_b,
        "same_profile_shape":
            strip_seconds(prof_p) == strip_seconds(prof_b),
    }
    # Profdiff-style attribution: diffing batch -> pure must blame the
    # accelerated kernel for the added wall-clock.
    diff = diff_profiles(totals_from_rows(prof_b or []),
                         totals_from_rows(prof_p or []), by="seconds")
    hottest = diff[0]["kernel"] if diff else None
    return {"pure_s": sec_p, "batch_s": sec_b,
            "speedup": sec_p / sec_b if sec_b > 0 else float("inf"),
            "distance": res_p.distance, "hottest": hottest,
            "checks": checks}


def _run():
    ulam_jobs = _capture_ulam_jobs()
    doubling_jobs = _capture_doubling_jobs()
    threshold_pairs = _e22_threshold_pairs()
    rows = [
        _kernel_case(f"ulam_sparse batch ({len(ulam_jobs)} E13 jobs)",
                     lambda: ulam_auto_batch(ulam_jobs)),
        _kernel_case(
            f"banded threshold ({E22_PAIRS} E22-shaped pairs)",
            lambda: within_threshold_batch(threshold_pairs, E22_TAU)),
        _kernel_case(
            f"banded doubling ({len(doubling_jobs)} large-regime pairs)",
            lambda: levenshtein_doubling_batch(doubling_jobs)),
    ]
    return rows, _end_to_end()


def bench_native_kernels(benchmark, report):
    rows, e2e = run_once(benchmark, _run)
    table = [[r["name"], f"{r['pure_s']:.3f}", f"{r['batch_s']:.3f}",
              f"{r['speedup']:.1f}x"] for r in rows]
    table.append([f"end-to-end mpc_ulam (E13, n={E13['n']})",
                  f"{e2e['pure_s']:.3f}", f"{e2e['batch_s']:.3f}",
                  f"{e2e['speedup']:.1f}x"])
    lines = [
        "Kernel backends: pure scalar vs native "
        f"(ambient backend: {kernel_backend()})",
        "",
        format_table(["workload", "pure_s", "native_s", "speedup"],
                     table),
        "",
        "distances, work ledgers, strings.dp_cells and profile "
        "calls/cells byte-identical across backends in every row "
        "(asserted); only wall-clock differs.",
        f"end-to-end attribution: hottest profdiff delta = "
        f"{e2e['hottest']} (the accelerated kernel).",
    ]
    report("E27_native_kernels", "\n".join(lines))

    for key, ok in e2e["checks"].items():
        assert ok, key
    assert e2e["hottest"] == "ulam_sparse", e2e["hottest"]
    by_name = {r["name"].split(" (")[0]: r for r in rows}
    # The scalar banded path is a per-row python loop: batching must
    # clear 10x.  The sparse/doubling scalar paths are already NumPy,
    # so their batch floors are conservative (~2-3x measured).
    assert by_name["banded threshold"]["speedup"] >= 10.0, by_name
    assert by_name["ulam_sparse batch"]["speedup"] >= 1.5, by_name
    assert by_name["banded doubling"]["speedup"] >= 1.2, by_name
    assert e2e["speedup"] >= 1.3, e2e
