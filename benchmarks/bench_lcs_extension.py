"""E15 — the LCS extension (dual problem; HSS'19-style additive regime).

Not a paper artifact: this validates the repository's
``repro.extensions.mpc_lcs`` extension — 2 rounds, certified lower bound,
additive ``O(ε·n)`` error — across workloads and an ``n``-ladder.
"""

from repro.analysis import format_table
from repro.extensions import mpc_lcs
from repro.strings import lcs_length
from repro.workloads.strings import planted_pair, random_string

from .conftest import run_once

X = 0.29
EPS = 0.25


def _run():
    rows = []
    for n in (128, 256, 512):
        for label, maker in {
            "identical": lambda: (random_string(n, 4, seed=n),) * 2,
            "planted": lambda: planted_pair(n, n // 16, sigma=4,
                                            seed=n)[:2],
            "random": lambda: (random_string(n, 4, seed=1),
                               random_string(n, 4, seed=2)),
        }.items():
            s, t = maker()
            res = mpc_lcs(s, t, x=X, eps=EPS)
            exact = lcs_length(s, t)
            rows.append({
                "n": n, "workload": label, "exact": exact,
                "mpc": res.lcs, "additive_gap": exact - res.lcs,
                "eps_n": EPS * n, "rounds": res.stats.n_rounds,
                "machines": res.stats.max_machines,
            })
    return rows


def bench_lcs_extension(benchmark, report):
    rows = run_once(benchmark, _run)
    lines = [
        "LCS extension: certified lower bound, additive O(eps·n) error,"
        " 2 rounds",
        f"x = {X}, eps = {EPS}",
        "",
        format_table(
            ["n", "workload", "exact", "mpc", "additive_gap", "eps_n",
             "rounds", "machines"],
            [[r[k] for k in ("n", "workload", "exact", "mpc",
                             "additive_gap", "eps_n", "rounds",
                             "machines")] for r in rows]),
    ]
    report("E15_lcs_extension", "\n".join(lines))

    for r in rows:
        assert r["mpc"] <= r["exact"]                   # lower bound
        assert r["additive_gap"] <= 2 * r["eps_n"]      # additive error
        assert r["rounds"] == 2
