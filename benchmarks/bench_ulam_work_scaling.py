"""E5 — Ulam total-work scaling (the Õ_ε(n) claim of §4).

Measures total DP-cell work of the Ulam algorithm over an ``n``-ladder
and fits the exponent.  DESIGN.md documents the one substitution that
affects this series: the paper's Appendix-A local-Ulam routine (not in
the supplied text) is replaced by the sparse chain DP, which costs up to
``O(c²)`` per candidate instead of near-linear — the measured exponent is
therefore expected in the 1.2–1.6 band rather than 1.0, and this bench
records exactly where it lands.
"""

from repro import UlamConfig, mpc_ulam
from repro.analysis import fit_power_law, format_table
from repro.workloads.permutations import planted_pair

from .conftest import run_once

X = 0.4
EPS = 1.0
NS = [256, 512, 1024, 2048]


def _run():
    rows = []
    for n in NS:
        s, t, _ = planted_pair(n, n // 16, seed=n, style="mixed")
        res = mpc_ulam(s, t, x=X, eps=EPS, seed=1,
                       config=UlamConfig.practical())
        rows.append({
            "n": n,
            "total_work": res.stats.total_work,
            "parallel_work": res.stats.parallel_work,
            "work/n": res.stats.total_work / n,
            "machines": res.stats.max_machines,
        })
    return rows


def bench_ulam_work_scaling(benchmark, report):
    rows = run_once(benchmark, _run)
    table = format_table(
        ["n", "total_work", "parallel_work", "work/n", "machines"],
        [[r[k] for k in ("n", "total_work", "parallel_work", "work/n",
                         "machines")] for r in rows])
    total_fit = fit_power_law([r["n"] for r in rows],
                              [r["total_work"] for r in rows])
    par_fit = fit_power_law([r["n"] for r in rows],
                            [r["parallel_work"] for r in rows])
    lines = [
        "Ulam total work vs n (paper: Õ_ε(n); see header for the",
        "Appendix-A substitution that shifts the measured exponent)",
        f"x = {X}, eps = {EPS}, practical preset",
        "",
        table,
        "",
        f"total work    ~ n^{total_fit.exponent:.2f}"
        f" (r2={total_fit.r_squared:.3f})",
        f"parallel work ~ n^{par_fit.exponent:.2f}"
        f" (r2={par_fit.r_squared:.3f})",
    ]
    report("E5_ulam_work_scaling", "\n".join(lines))

    # strictly subquadratic (the dense single-machine DP is n^2), and
    # the critical path scales much more slowly than the total
    # (parallelism is real); the gap to the paper's n^1 is the
    # documented Appendix-A substitution
    assert total_fit.exponent < 2.0
    assert par_fit.exponent <= total_fit.exponent - 0.3
