"""E13 — real parallel speed-up of round execution.

The MPC premise is that machines within a round run concurrently.  The
simulator's process-pool executor makes that physical on one host: this
bench times the same Ulam round-1 workload under the serial and the
process-pool executor and reports the speed-up (machine work is chunky
enough here that IPC overhead does not dominate).
"""

import os
import time

from repro import UlamConfig, mpc_ulam
from repro.analysis import format_table
from repro.mpc import MPCSimulator, ProcessPoolExecutor
from repro.workloads.permutations import planted_pair

from .conftest import run_once

N = 1024
X = 0.4
EPS = 1.0
CFG = UlamConfig.practical()


def _run():
    s, t, _ = planted_pair(N, N // 8, seed=31, style="mixed")

    t0 = time.perf_counter()
    serial = mpc_ulam(s, t, x=X, eps=EPS, seed=1, config=CFG)
    serial_s = time.perf_counter() - t0

    workers = min(os.cpu_count() or 1, 4)
    with ProcessPoolExecutor(max_workers=workers, chunksize=1) as pool:
        sim = MPCSimulator(memory_limit=serial.params.memory_limit,
                           executor=pool)
        t0 = time.perf_counter()
        pooled = mpc_ulam(s, t, x=X, eps=EPS, seed=1, sim=sim, config=CFG)
        pooled_s = time.perf_counter() - t0

    return {
        "workers": workers,
        "serial_s": serial_s,
        "pooled_s": pooled_s,
        "speedup": serial_s / pooled_s if pooled_s > 0 else float("inf"),
        "same_answer": serial.distance == pooled.distance,
        "distance": serial.distance,
        "machines_round1": serial.stats.rounds[0].machines,
    }


def bench_executor_speedup(benchmark, report):
    row = run_once(benchmark, _run)
    lines = [
        "Round-execution speed-up: serial vs process-pool executor",
        f"n = {N}, x = {X}, {row['machines_round1']} machines in round 1,"
        f" {row['workers']} workers",
        "",
        format_table(
            ["workers", "serial_s", "pooled_s", "speedup", "same_answer"],
            [[row["workers"], row["serial_s"], row["pooled_s"],
              row["speedup"], row["same_answer"]]]),
    ]
    report("E13_executor_speedup", "\n".join(lines))

    assert row["same_answer"]
    # With >= 2 workers and chunky machines, the pool must not be
    # drastically slower; genuine speed-up depends on host load, so the
    # hard assertion is conservative.
    if row["workers"] >= 2:
        assert row["speedup"] > 0.6
