"""E26 — overhead of the kernel-attribution profiler.

Two claims are measured on the Ulam workload (protocol of E21: the
variants are interleaved within each repetition and compared pairwise
per rep, so back-to-back runs see the same system load):

1. **Free when disabled** (the library default): ``KernelProbe.begin``
   is one module-attribute read returning the ``-1.0`` sentinel and
   ``end`` one float comparison, so a run with the profiler off must
   leave *zero* trace — no ``profile`` block in the summary, no global
   aggregate growth.
2. **Cheap when enabled**: full per-(kernel, round, machine)
   wall-clock attribution must stay within 5 % of the disabled run,
   so the CLI can profile every run it records into the history.

One identity is asserted as well: the profiler's per-kernel DP-cell
total must exactly equal the metrics registry's ``strings.dp_cells``
counter for the same kernel over the machine rounds — two independent
observation paths, one execution.
"""

import time

from repro import UlamConfig, mpc_ulam
from repro.analysis import format_table
from repro.mpc import MPCSimulator
from repro.obs import profile

from .conftest import run_once

N = 1024
X = 0.4
EPS = 1.0
REPS = 5
CFG = UlamConfig.practical()


def _once(s, t, profiling_on):
    with profile.enabled(profiling_on):
        sim = MPCSimulator()
        t0 = time.perf_counter()
        res = mpc_ulam(s, t, x=X, eps=EPS, seed=1, sim=sim, config=CFG)
        sec = time.perf_counter() - t0
    return sec, res


def _run():
    from repro.workloads.permutations import planted_pair
    s, t, _ = planted_pair(N, N // 8, seed=31, style="mixed")

    off_s = on_s = float("inf")
    on_ratio = float("inf")
    for _ in range(REPS):
        off_sec, off_res = _once(s, t, False)
        off_s = min(off_s, off_sec)
        on_sec, on_res = _once(s, t, True)
        on_s = min(on_s, on_sec)
        on_ratio = min(on_ratio, on_sec / off_sec)

    rows = on_res.stats.profile_rows()
    profiled_cells = sum(r["cells"] for r in rows
                         if r["kernel"] == "ulam_sparse")
    return {
        "off_s": off_s,
        "on_s": on_s,
        "on_delta": on_ratio - 1.0,
        "same_answer": off_res.distance == on_res.distance,
        "off_has_profile": off_res.stats.profile_active,
        "rows": rows,
        "profiled_cells": profiled_cells,
    }


def bench_profiler_overhead(benchmark, report):
    from repro.metrics import enabled as metrics_enabled, get_registry
    # Run under metrics too, so the cells identity below can be checked
    # against the registry's independent counter path.
    get_registry().reset()
    with metrics_enabled(True):
        row = run_once(benchmark, _run)
        counter_cells = sum(
            v["value"] for k, v in get_registry().snapshot().items()
            if k == "strings.dp_cells{kernel=ulam_sparse}")
    lines = [
        "Kernel-profiler overhead on the Ulam workload "
        f"(n = {N}, x = {X}, best of {REPS})",
        "",
        format_table(
            ["variant", "seconds", "delta_vs_disabled"],
            [["profiler disabled (default)", row["off_s"], 0.0],
             ["profiler enabled, full attribution", row["on_s"],
              row["on_delta"]]]),
        "",
        f"profile rows = {len(row['rows'])}; "
        f"ulam_sparse cells (profiler) = {row['profiled_cells']}",
    ]
    report("E26_profiler_overhead", "\n".join(lines))

    assert row["same_answer"]
    # Disabled runs must leave zero trace in the summary.
    assert not row["off_has_profile"], row
    # Full attribution was actually collected...
    assert row["rows"], row
    assert row["profiled_cells"] > 0
    # ...and agrees with the registry's independent dp_cells counter
    # (the counter saw both the profiled and the unprofiled runs, all
    # through the same machine tasks: REPS pairs, profiler on in half).
    assert counter_cells == 2 * REPS * row["profiled_cells"], \
        (counter_cells, row["profiled_cells"])
    # ...while staying within 5% of the disabled run.
    assert row["on_delta"] < 0.05, row
