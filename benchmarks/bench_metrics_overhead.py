"""E21 — overhead of the metrics registry.

Two claims are measured on the Ulam workload:

1. **Free when disabled** (the library default): every instrument
   mutation is guarded by one ``_enabled`` attribute check on a cached
   module-level handle, so a run with the registry off must be
   indistinguishable from the seed code path (< 5 % paired delta, and
   in practice ~0 %).
2. **Cheap when enabled**: full collection — kernel counters, candidate
   histograms, per-round shuffle/broadcast counters and the per-run
   delta snapshot — must stay within 5 % of the disabled run, so the
   CLI can leave metrics on for every run it records into the history.

Two identities are asserted as well: the per-round
``mpc.shuffle_words{round=...}`` counters must sum to exactly the
ledger's shuffle volume, and the candidate-tuple counter must equal the
driver's reported tuple count — the registry measures the same
execution the ledger does, through an independent code path.
"""

import time

from repro import UlamConfig, mpc_ulam
from repro.analysis import format_table
from repro.metrics import enabled, get_registry
from repro.mpc import MPCSimulator

from .conftest import run_once

N = 1024
X = 0.4
EPS = 1.0
REPS = 5
CFG = UlamConfig.practical()


def _once(s, t, metrics_on):
    with enabled(metrics_on):
        sim = MPCSimulator()
        t0 = time.perf_counter()
        res = mpc_ulam(s, t, x=X, eps=EPS, seed=1, sim=sim, config=CFG)
        sec = time.perf_counter() - t0
    return sec, res


def _run():
    from repro.workloads.permutations import planted_pair
    s, t, _ = planted_pair(N, N // 8, seed=31, style="mixed")

    # Interleave the variants within each repetition and compare them
    # *pairwise per rep* (see bench_telemetry_overhead.py): back-to-back
    # runs see the same system load, so the rep-wise minimum ratio
    # cancels machine-noise drift that independent best-of times cannot.
    off_s = on_s = float("inf")
    on_ratio = float("inf")
    for _ in range(REPS):
        off_sec, off_res = _once(s, t, False)
        off_s = min(off_s, off_sec)
        on_sec, on_res = _once(s, t, True)
        on_s = min(on_s, on_sec)
        on_ratio = min(on_ratio, on_sec / off_sec)

    metrics = on_res.stats.metrics
    shuffle_metric = sum(
        v["value"] for k, v in metrics.items()
        if k.startswith("mpc.shuffle_words{"))
    tuple_metric = metrics.get("ulam.candidate_tuples",
                               {}).get("value", 0)
    return {
        "off_s": off_s,
        "on_s": on_s,
        "on_delta": on_ratio - 1.0,
        "same_answer": off_res.distance == on_res.distance,
        "off_metrics": len(off_res.stats.metrics),
        "n_metrics": len(metrics),
        "shuffle_metric": shuffle_metric,
        "shuffle_ledger": on_res.stats.shuffle_words,
        "tuple_metric": tuple_metric,
        "tuple_driver": on_res.n_tuples,
    }


def bench_metrics_overhead(benchmark, report):
    row = run_once(benchmark, _run)
    lines = [
        "Metrics-registry overhead on the Ulam workload "
        f"(n = {N}, x = {X}, best of {REPS})",
        "",
        format_table(
            ["variant", "seconds", "delta_vs_disabled"],
            [["metrics disabled (default)", row["off_s"], 0.0],
             ["metrics enabled, full collection", row["on_s"],
              row["on_delta"]]]),
        "",
        f"metrics collected = {row['n_metrics']}; "
        f"shuffle counter {row['shuffle_metric']} == ledger "
        f"{row['shuffle_ledger']}; "
        f"tuple counter {row['tuple_metric']} == driver "
        f"{row['tuple_driver']}",
    ]
    report("E21_metrics_overhead", "\n".join(lines))

    assert row["same_answer"]
    # Disabled runs must leave zero trace in the run's metrics view.
    assert row["off_metrics"] == 0, row
    # Independent code paths, same measurement: the per-round shuffle
    # counters sum to the ledger's shuffle volume, and the candidate
    # counter matches the driver's own tuple count.
    assert row["shuffle_metric"] == row["shuffle_ledger"], row
    assert row["tuple_metric"] == row["tuple_driver"], row
    # Full collection must stay within 5% of the disabled run.
    assert row["n_metrics"] > 0
    assert row["on_delta"] < 0.05, row
