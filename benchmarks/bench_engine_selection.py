"""E24 — engine selection quality (beyond the paper).

Runs every registered edit/ulam engine on the same planted pairs across
an ``n`` ladder and compares the ``auto`` planner's pick against the
field: per engine the answered distance, approximation ratio, and total
abstract work; for the planner the engine it chose and the work it paid.

The gate asserts the planner never pays more than ``1.1×`` the cheapest
single engine's measured work at any ladder point — the selection is
allowed to be approximate (it ranks by an analytic cost model unless
measured history exists) but not wasteful — and that every engine's
answer stays within its advertised guarantee factor.

The companion determinism row lives in ``BENCH_table1.json`` (command
``solve``): ``tools/check_regression.py`` replays it through ``repro
solve --engine auto`` like the ulam/edit rows, so the planner's chosen
path is regression-gated in CI while the field-wide comparison stays
here.
"""

from repro.engines import EngineRequest, engines_for, select_engine
from repro.analysis import format_table
from repro.strings import levenshtein, ulam_distance
from repro.workloads.permutations import planted_pair as perm_pair
from repro.workloads.strings import planted_pair as str_pair

from .conftest import run_once

NS = [128, 256, 512]
#: The planner may pay at most this factor over the cheapest engine.
AUTO_OVERHEAD = 1.1


def _pair(distance, n):
    if distance == "ulam":
        return perm_pair(n, max(4, n // 16), seed=n, style="mixed")[:2]
    return str_pair(n, max(4, n // 16), sigma=4, seed=n)[:2]


def _field(distance, n):
    """Every engine admissible at (distance, n) on the same pair."""
    s, t = _pair(distance, n)
    exact = ulam_distance(s, t) if distance == "ulam" \
        else levenshtein(s, t)
    rows = []
    for eng in engines_for(distance):
        if eng.caps.regime.admits_n(n):
            continue
        eres = eng.solve(EngineRequest(distance=distance, s=s, t=t))
        rows.append({
            "n": n, "engine": eng.caps.name,
            "guarantee": eng.caps.guarantee_class,
            "exact": exact, "answer": eres.distance,
            "ratio": round(eres.distance / max(exact, 1), 3),
            "total_work": eres.stats.total_work,
        })
    auto = select_engine(EngineRequest(distance=distance, s=s, t=t))
    return rows, auto.caps.name


def _run():
    out = {}
    for distance in ("ulam", "edit"):
        out[distance] = [_field(distance, n) for n in NS]
    return out


COLS = ("n", "engine", "guarantee", "exact", "answer", "ratio",
        "total_work")


def bench_engine_selection(benchmark, report):
    results = run_once(benchmark, _run)
    lines = ["Engine selection quality: every engine vs the auto planner",
             f"gate: auto work <= {AUTO_OVERHEAD}x cheapest engine", ""]
    for distance, ladder in results.items():
        lines.append(f"{distance} distance:")
        rows = [r for field, _ in ladder for r in field]
        lines.append(format_table(COLS, [[r[k] for k in COLS]
                                         for r in rows]))
        picks = [f"n={field[0]['n']}: auto -> {pick}"
                 for field, pick in ladder]
        lines.append("auto picks: " + "; ".join(picks))
        lines.append("")
    report("E24_engine_selection", "\n".join(lines))

    for distance, ladder in results.items():
        for field, pick in ladder:
            by_name = {r["engine"]: r for r in field}
            assert pick in by_name, (distance, pick)
            cheapest = min(r["total_work"] for r in field)
            assert by_name[pick]["total_work"] <= \
                AUTO_OVERHEAD * cheapest, (distance, pick, cheapest)
            for r in field:
                factor = {"exact": 1.0, "1+eps": 2.0, "3+eps": 4.0,
                          "polylog": None}[r["guarantee"]]
                if factor is not None:
                    assert r["ratio"] <= factor, r
                assert r["answer"] >= r["exact"], r
