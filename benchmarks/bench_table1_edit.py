"""E2 — Table 1 row 2: the edit-distance algorithm (Theorem 9).

Measures the row's claims — ``3+ε`` approximation, ≤ 4 rounds,
``Õ_ε(n^(1-x))`` memory, subquadratic total work — on two ladders:

* **fixed planted distance** (``d = 16``): isolates the scaling in ``n``
  at a fixed solution scale, the setting of the paper's per-``δ``
  resource formulas; work must stay subquadratic here.
* **proportional distance** (``d = n/16``): the hard regime where the
  accepted guess grows with ``n``; reported for completeness (the paper's
  machine bound ``n^(2x-(1-δ))`` grows toward ``n^2x`` as ``δ → 1``).
"""

from repro import mpc_edit_distance
from repro.analysis import fit_power_law, format_table
from repro.strings import levenshtein
from repro.workloads.strings import planted_pair

from .conftest import run_once

X = 0.29
EPS = 1.0
NS = [128, 256, 512, 1024]


def _measure(n, budget):
    s, t, _ = planted_pair(n, budget, sigma=4, seed=n)
    res = mpc_edit_distance(s, t, x=X, eps=EPS, seed=1)
    exact = levenshtein(s, t)
    return {
        "n": n,
        "planted": budget,
        "exact": exact,
        "mpc": res.distance,
        "ratio": res.distance / max(exact, 1),
        "rounds": res.stats.n_rounds,
        "machines": res.stats.max_machines,
        "mem_words": res.stats.max_memory_words,
        "mem_cap": res.params.memory_limit,
        "total_work": res.stats.total_work,
        "n^2": n * n,
    }


def _run():
    fixed = [_measure(n, 16) for n in NS]
    proportional = [_measure(n, max(4, n // 16)) for n in NS]
    return fixed, proportional


COLS = ("n", "planted", "exact", "mpc", "ratio", "rounds", "machines",
        "mem_words", "mem_cap", "total_work", "n^2")


def bench_table1_row2_edit(benchmark, report):
    fixed, proportional = run_once(benchmark, _run)
    work_fit = fit_power_law([r["n"] for r in fixed],
                             [r["total_work"] for r in fixed])
    machine_fit = fit_power_law([r["n"] for r in fixed],
                                [r["machines"] for r in fixed])
    lines = [
        "Table 1 row 2 (Theorem 9): 3+eps edit distance, <= 4 rounds,"
        " subquadratic work",
        f"x = {X}, eps = {EPS}",
        "",
        "fixed planted distance d = 16:",
        format_table(COLS, [[r[k] for k in COLS] for r in fixed]),
        "",
        "proportional planted distance d = n/16:",
        format_table(COLS, [[r[k] for k in COLS] for r in proportional]),
        "",
        f"fixed-d work     ~ n^{work_fit.exponent:.2f}"
        f"  (must be subquadratic; r2={work_fit.r_squared:.3f})",
        f"fixed-d machines ~ n^{machine_fit.exponent:.2f}"
        f"  (r2={machine_fit.r_squared:.3f})",
    ]
    report("E2_table1_edit", "\n".join(lines))

    for r in fixed + proportional:
        assert r["ratio"] <= 3 + EPS
        assert r["rounds"] <= 4
        assert r["mem_words"] <= r["mem_cap"]
    assert work_fit.exponent < 2.0
