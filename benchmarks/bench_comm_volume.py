"""E19 — communication volume per round (shuffle vs broadcast).

The pipeline layer (:mod:`repro.mpc.plan`) meters, per round, the words
replicated to every machine (``broadcast_words``) and the words the
collector routes into the next round's state (``shuffle_words``) — the
quantities the paper's total-communication claims are phrased in.  This
experiment records both for the Ulam driver and the two edit regimes
across the memory exponent ``x``, checking the structural claims:

* broadcast stays a small additive term (parameters + offsets, not
  data): it never exceeds the shuffled volume at the chosen sizes;
* the round-1 → round-2 shuffle shrinks the input: the candidate tuples
  a combine round receives fit in a single machine, so shuffle words
  stay within the per-machine memory budget implied by ``x``.
"""

from repro.analysis import format_table
from repro.editdistance import mpc_edit_distance
from repro.editdistance.config import EditConfig
from repro.editdistance.large import large_distance_upper_bound
from repro.mpc import MPCSimulator
from repro.params import EditParams
from repro.ulam import mpc_ulam
from repro.workloads.permutations import planted_pair as perm_pair
from repro.workloads.strings import block_shuffled_pair, planted_pair

from .conftest import run_once

N = 512
XS = (0.2, 0.25, 0.29)  # Theorem 9 requires x <= 5/17
ULAM_X = (0.3, 0.4)


def _rows(tag, x, stats):
    rows = []
    for r in stats.rounds:
        rows.append([tag, x, r.name, r.machines, r.total_input_words,
                     r.broadcast_words, r.shuffle_words, r.shuffle_work])
    return rows


def _run():
    rows = []

    for x in ULAM_X:
        s, t, _ = perm_pair(N, N // 16, seed=41, style="mixed")
        res = mpc_ulam(s, t, x=x, eps=0.5, seed=42)
        rows.extend(_rows("ulam", x, res.stats))

    for x in XS:
        s, t, _ = planted_pair(N, N // 32, sigma=4, seed=43)
        res = mpc_edit_distance(s, t, x=x, eps=1.0, seed=44)
        rows.extend(_rows(f"edit/{res.regime}", x, res.stats))

    # Large regime, exercised directly (the driver only enters it for
    # distances >= n^(1-x/5), unwieldy at benchable sizes).
    s, t = block_shuffled_pair(256, 8, seed=45)
    params = EditParams(n=256, x=0.29, eps=1.0, eps_prime_divisor=4)
    cfg = EditConfig(max_representatives=16, max_low_degree_samples=8,
                     max_extensions_per_pair_source=8)
    sim = MPCSimulator(memory_limit=params.memory_limit)
    large_distance_upper_bound(s, t, params, guess=32, sim=sim,
                               config=cfg, seed=46)
    rows.extend(_rows("edit/large", 0.29, sim.stats))

    return rows


def bench_comm_volume(benchmark, report):
    rows = run_once(benchmark, _run)
    lines = [
        f"Per-round communication volume (n = {N}, words)",
        "",
        format_table(
            ["algorithm", "x", "round", "machines", "words_in",
             "broadcast", "shuffle_words", "shuffle_work"], rows),
        "",
        "broadcast = per-machine replicated parameter words; "
        "shuffle_words = collector output routed to the next round.",
    ]
    report("E19_comm_volume", "\n".join(lines))

    by_algo = {}
    for tag, x, name, machines, words_in, bcast, shuf, _work in rows:
        by_algo.setdefault((tag, x), []).append((bcast, shuf, words_in))
    for (tag, x), rounds in by_algo.items():
        # Broadcast is a parameter-sized additive term, not a data ship.
        total_bcast = sum(b for b, _, _ in rounds)
        total_shuffle = sum(s for _, s, _ in rounds)
        assert total_bcast < total_shuffle, (tag, x, rounds)
