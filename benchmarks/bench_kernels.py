"""E12 — throughput of the sequential string kernels.

These are the per-machine primitives every MPC round executes; their
constants determine the wall-clock of every other experiment.  Standard
pytest-benchmark microbenches (these are fast enough to loop properly).
"""

import numpy as np
import pytest

from repro.strings import (fitting_alignment, levenshtein,
                           levenshtein_doubling, lis_length, local_ulam,
                           match_points, myers_levenshtein, ulam_auto)
from repro.workloads.permutations import planted_pair
from repro.workloads.strings import planted_pair as str_pair


@pytest.fixture(scope="module")
def near_pair():
    return str_pair(2000, 20, sigma=4, seed=1)[:2]


@pytest.fixture(scope="module")
def perm_pair_data():
    s, t, _ = planted_pair(2000, 40, seed=2, style="mixed")
    return s, t


def bench_levenshtein_dense_2000(benchmark, near_pair):
    s, t = near_pair
    result = benchmark(levenshtein, s, t)
    assert result >= 0


def bench_myers_bitparallel_2000(benchmark, near_pair):
    s, t = near_pair
    exact = levenshtein(s, t)
    result = benchmark(myers_levenshtein, s, t)
    assert result == exact


def bench_levenshtein_banded_near_2000(benchmark, near_pair):
    s, t = near_pair
    exact = levenshtein(s, t)
    result = benchmark(levenshtein_doubling, s, t)
    assert result == exact


def bench_fitting_alignment_100_in_2000(benchmark, near_pair):
    s, t = near_pair
    gamma, kappa, d = benchmark(fitting_alignment, s[300:400], t)
    assert d <= 100


def bench_lis_length_100k(benchmark):
    rng = np.random.default_rng(3)
    seq = rng.permutation(100_000)
    result = benchmark(lis_length, seq)
    assert result > 100


def bench_sparse_ulam_block_256(benchmark, perm_pair_data):
    s, t = perm_pair_data
    block = s[:256]
    i_pts, p_pts = match_points(block, t)

    def run():
        return ulam_auto(i_pts, p_pts, 256, len(t))

    result = benchmark(run)
    assert result >= 0


def bench_local_ulam_block_256(benchmark, perm_pair_data):
    s, t = perm_pair_data
    block = s[:256]
    gamma, kappa, d = benchmark(local_ulam, block, t)
    assert 0 <= gamma <= kappa <= len(t)
