"""E23 — persistent service vs back-to-back one-shot CLI runs.

The service's reason to exist is amortisation: one interpreter, one
executor, one data-plane publish per corpus, shared across every query.
This bench runs the same mixed ulam/edit workload twice —

* **one-shot**: each query is a fresh ``python -m repro <algo>``
  subprocess, paying interpreter start-up, imports, pool construction
  and input publication per query (how a cron job or shell loop would
  drive the repo);
* **service**: the same queries through one warm
  :class:`~repro.service.DistanceService` via
  :func:`~repro.service.run_workload`.

Both paths compute identical distances (the resumable-query refactor
keeps ledgers byte-identical; the golden-equivalence suite proves it).
The reported numbers are amortised per-query latency for both paths,
the speed-up, and the service-side p50/p99 latency and queries/sec.
"""

import json
import os
import pathlib
import subprocess
import sys
import time

from repro.analysis import format_table
from repro.service import run_workload
from repro.workloads.permutations import planted_pair as perm_pair
from repro.workloads.strings import planted_pair as str_pair

from .conftest import run_once

ROOT = pathlib.Path(__file__).resolve().parent.parent

N = 64
X = 0.25
EPS = 0.5
SEED = 0
N_QUERIES = 8


def _workload():
    """Mixed queries, each on its own seeded input pair — exactly what
    the one-shot CLI regenerates for ``--n N --seed SEED+i``."""
    budget = N // 16
    queries = []
    for i in range(N_QUERIES):
        algo = "ulam" if i % 2 == 0 else "edit"
        seed = SEED + i
        if algo == "ulam":
            s, t, _ = perm_pair(N, budget, seed=seed, style="mixed")
        else:
            s, t, _ = str_pair(N, budget, sigma=4, seed=seed)
        queries.append({"algo": algo, "s": s, "t": t,
                        "x": X, "eps": EPS, "seed": seed})
    return queries


def _run_one_shot(algo: str, seed: int):
    """One cold CLI run; returns (distance, wall seconds)."""
    cmd = [sys.executable, "-m", "repro", algo,
           "--n", str(N), "--x", str(X), "--eps", str(EPS),
           "--seed", str(seed), "--json", "--no-history"]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    t0 = time.perf_counter()
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env,
                          cwd=str(ROOT), check=True, timeout=600)
    wall = time.perf_counter() - t0
    record = json.loads(proc.stdout.strip().splitlines()[-1])
    return record["summary"]["distance"], wall


def _percentile(sorted_values, q):
    idx = round(q * (len(sorted_values) - 1))
    return sorted_values[max(0, min(len(sorted_values) - 1, int(idx)))]


def _run():
    queries = _workload()

    one_shot_walls = []
    one_shot_distances = []
    for q in queries:
        distance, wall = _run_one_shot(q["algo"], q["seed"])
        one_shot_distances.append(distance)
        one_shot_walls.append(wall)

    outcomes, service_wall = run_workload(queries,
                                          check_guarantees=False)

    latencies = sorted(o.latency_seconds for o in outcomes)
    one_shot_per_query = sum(one_shot_walls) / len(one_shot_walls)
    service_per_query = service_wall / len(outcomes)
    return {
        "one_shot_distances": one_shot_distances,
        "service_distances": [o.distance for o in outcomes],
        "one_shot_total_s": sum(one_shot_walls),
        "one_shot_per_query_s": one_shot_per_query,
        "service_total_s": service_wall,
        "service_per_query_s": service_per_query,
        "speedup": one_shot_per_query / service_per_query,
        "p50_s": _percentile(latencies, 0.50),
        "p99_s": _percentile(latencies, 0.99),
        "qps": len(outcomes) / service_wall,
    }


def bench_service_throughput(benchmark, report):
    row = run_once(benchmark, _run)
    lines = [
        "Persistent service vs back-to-back one-shot CLI runs",
        f"n = {N}, x = {X}, eps = {EPS}, {N_QUERIES} mixed ulam/edit "
        f"queries (seeds {SEED}..{SEED + N_QUERIES - 1})",
        "",
        format_table(
            ["path", "total_s", "per_query_s"],
            [["one-shot CLI", f"{row['one_shot_total_s']:.3f}",
              f"{row['one_shot_per_query_s']:.3f}"],
             ["service", f"{row['service_total_s']:.3f}",
              f"{row['service_per_query_s']:.3f}"]]),
        "",
        f"amortised speed-up : {row['speedup']:.1f}x",
        f"service p50 latency: {row['p50_s'] * 1000:.1f} ms",
        f"service p99 latency: {row['p99_s'] * 1000:.1f} ms",
        f"service throughput : {row['qps']:.2f} queries/sec",
    ]
    report("E23_service_throughput", "\n".join(lines))

    # Same inputs, same seeds: both paths must agree exactly.
    assert row["service_distances"] == row["one_shot_distances"]
    # The acceptance bar: one warm service must amortise at least 3x
    # better than cold per-query CLI runs (interpreter + imports + pool
    # + publish per query).  Start-up dominates at this n, so the bar
    # holds with wide margin on any host.
    assert row["speedup"] >= 3.0
