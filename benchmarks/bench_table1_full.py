"""E16 — all four Table 1 rows, measured side by side.

With the BEGHS'18-style implementation in place, every row of Table 1 is
a running algorithm.  This bench executes all four on comparable inputs
and prints the table the paper opens with, in measured form:

* Ulam (Theorem 4)            — permutation workload;
* edit distance (Theorem 9)   — string workload;
* BEGHS'18 [11]               — same string workload, O(log n) rounds;
* HSS'19 [20]                 — same string workload, n^2x machines.
"""

from repro import mpc_edit_distance, mpc_ulam
from repro.analysis import format_table
from repro.baselines import beghs_edit_distance, hss_edit_distance
from repro.strings import levenshtein, ulam_distance
from repro.workloads.permutations import planted_pair as perm_pair
from repro.workloads.strings import planted_pair as str_pair

from .conftest import run_once

N = 384
X = 0.29
EPS = 1.0


def _run():
    ps, pt, _ = perm_pair(N, N // 16, seed=1, style="mixed")
    ss, st_, _ = str_pair(N, N // 16, sigma=4, seed=2)
    exact_u = ulam_distance(ps, pt)
    exact_e = levenshtein(ss, st_)

    ulam = mpc_ulam(ps, pt, x=0.4, eps=0.5, seed=1)
    ours = mpc_edit_distance(ss, st_, x=X, eps=EPS, seed=1)
    beghs = beghs_edit_distance(ss, st_, eps=EPS, base_exponent=0.7)
    hss = hss_edit_distance(ss, st_, x=X, eps=EPS)

    def row(problem, reference, guarantee, res, exact):
        return [problem, reference, guarantee,
                f"{res.distance / max(exact, 1):.3f}",
                res.stats.n_rounds, res.stats.max_machines,
                res.stats.max_memory_words, res.stats.total_work]

    return [
        row("ulam", "Theorem 4", "1+eps", ulam, exact_u),
        row("edit", "Theorem 9", "3+eps", ours, exact_e),
        row("edit", "BEGHS'18 [11]", "1+eps", beghs, exact_e),
        row("edit", "HSS'19 [20]", "1+eps", hss, exact_e),
    ], exact_u, exact_e


def bench_table1_all_rows(benchmark, report):
    rows, exact_u, exact_e = run_once(benchmark, _run)
    lines = [
        "Table 1, all four rows measured on comparable inputs",
        f"n = {N}, x = {X} (Ulam at x = 0.4), planted d = n/16"
        f" (exact: ulam {exact_u}, edit {exact_e})",
        "",
        format_table(
            ["problem", "reference", "guarantee", "measured_ratio",
             "rounds", "machines", "memory/machine", "total_work"],
            rows),
        "",
        "Table 1 structure, measured: the 1+eps rows pay either rounds"
        " (BEGHS: O(log n)) or machines (HSS: n^2x); Theorem 9 runs in"
        " <= 4 rounds with the fewest machines at a 3+eps budget.",
    ]
    report("E16_table1_full", "\n".join(lines))

    by_ref = {r[1]: r for r in rows}
    # every algorithm within its guarantee
    assert float(by_ref["Theorem 4"][3]) <= 1.5
    assert float(by_ref["Theorem 9"][3]) <= 3 + EPS
    assert float(by_ref["BEGHS'18 [11]"][3]) <= 1 + EPS
    assert float(by_ref["HSS'19 [20]"][3]) <= 1 + EPS
    # the round/machine structure of the table
    assert by_ref["BEGHS'18 [11]"][4] > by_ref["Theorem 9"][4]
    assert by_ref["HSS'19 [20]"][5] > by_ref["Theorem 9"][5]
    assert by_ref["Theorem 4"][4] == 2 and by_ref["HSS'19 [20]"][4] == 2
