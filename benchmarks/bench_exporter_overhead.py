"""E25 — overhead of the live observability exporter.

The ``/metrics`` + ``/healthz`` endpoint must be safe to leave on in
production: the handler thread reads registry snapshots and the
service's ``status()`` dict, it never takes the query path's locks.
Measured here on the E23-style mixed service workload, run two ways
per repetition: bare ``run_workload``, and the same workload with an
:class:`~repro.obs.ObservabilityServer` bound to the service while a
background poller scrapes ``/metrics`` and ``/healthz`` every 50 ms —
a far higher scrape rate than any real Prometheus (15 s default).

The gate asserts the paired wall-clock delta stays under 5 %, that the
scraper actually observed the *live* service (``repro_service_up``
present in at least one scrape), and that both variants return
identical distances.
"""

import threading
import time
import urllib.request

from repro.analysis import format_table
from repro.obs import ObservabilityServer
from repro.service import run_workload
from repro.workloads.permutations import planted_pair as perm_pair
from repro.workloads.strings import planted_pair as str_pair

from .conftest import run_once

N = 128
BUDGET = 8
QUERIES = 6
REPS = 3
SCRAPE_INTERVAL = 0.05


def _mixed_queries():
    s_p, t_p, _ = perm_pair(N, BUDGET, seed=0, style="mixed")
    s_s, t_s, _ = str_pair(N, BUDGET, sigma=4, seed=0)
    out = []
    for i in range(QUERIES):
        if i % 2 == 0:
            out.append({"algo": "ulam", "s": s_p, "t": t_p,
                        "seed": i, "x": 0.25, "eps": 0.5})
        else:
            out.append({"algo": "edit", "s": s_s, "t": t_s,
                        "seed": i, "x": 0.25, "eps": 1.0})
    return out


def _bare(queries):
    t0 = time.perf_counter()
    outcomes, _ = run_workload(queries, check_guarantees=False)
    return time.perf_counter() - t0, outcomes


def _scrape(url):
    with urllib.request.urlopen(url, timeout=2) as resp:
        return resp.read().decode("utf-8")


def _exported(queries):
    obs = ObservabilityServer(port=0).start()
    stop = threading.Event()
    bodies = []

    def poll():
        while not stop.is_set():
            try:
                bodies.append(_scrape(obs.url + "/metrics"))
                bodies.append(_scrape(obs.url + "/healthz"))
            except OSError:
                pass
            stop.wait(SCRAPE_INTERVAL)

    thread = threading.Thread(target=poll, daemon=True)
    thread.start()
    try:
        t0 = time.perf_counter()
        outcomes, _ = run_workload(queries, observer=obs,
                                   check_guarantees=False)
        sec = time.perf_counter() - t0
    finally:
        stop.set()
        thread.join()
        obs.stop()
    return sec, outcomes, bodies


def _run():
    queries = _mixed_queries()
    # Pairwise per rep (see bench_telemetry_overhead.py): back-to-back
    # runs see the same system load, so the rep-wise minimum ratio
    # cancels machine-noise drift.
    bare_s = exported_s = ratio = float("inf")
    scrapes = 0
    saw_live_service = False
    for _ in range(REPS):
        bare_sec, bare_out = _bare(queries)
        bare_s = min(bare_s, bare_sec)
        sec, exp_out, bodies = _exported(queries)
        exported_s = min(exported_s, sec)
        ratio = min(ratio, sec / bare_sec)
        scrapes += len(bodies)
        saw_live_service = saw_live_service or any(
            "repro_service_up" in body for body in bodies)
        assert [o.distance for o in bare_out] \
            == [o.distance for o in exp_out]
    return {
        "bare_s": bare_s,
        "exported_s": exported_s,
        "delta": ratio - 1.0,
        "scrapes": scrapes,
        "saw_live_service": saw_live_service,
        "qps": QUERIES / exported_s,
    }


def bench_exporter_overhead(benchmark, report):
    row = run_once(benchmark, _run)
    lines = [
        "Exporter overhead on the mixed service workload "
        f"(n = {N}, {QUERIES} queries, scrape every "
        f"{SCRAPE_INTERVAL * 1000:.0f} ms, best of {REPS})",
        "",
        format_table(
            ["variant", "seconds", "delta_vs_bare"],
            [["no exporter", row["bare_s"], 0.0],
             ["/metrics + /healthz under scrape", row["exported_s"],
              row["delta"]]]),
        "",
        f"{row['scrapes']} scrapes answered across {REPS} reps; "
        f"live service observed = {row['saw_live_service']}; "
        f"{row['qps']:.1f} queries/sec with exporter on",
    ]
    report("E25_exporter_overhead", "\n".join(lines))

    assert row["saw_live_service"], "scraper never saw the bound service"
    assert row["scrapes"] > 0
    # The endpoint must cost < 5% wall-clock even under a pathological
    # scrape rate (paired-rep minimum ratio, generous over timer noise).
    assert row["delta"] < 0.05, row
