"""E14 — ablation of the gap-grid design choice (``G_i = ε'·u_i``).

The central discretisation of Algorithm 1 (and Fig. 4) inspects only
starting/ending points on a ``G_i``-spaced grid, trading a bounded
additive error (``≤ 2ε'·u_i`` per block, Lemma 3) for a ``1/ε'`` factor
in candidate counts.  This ablation scales the grid by a multiplier:

* ``× 0.5`` — denser than the paper: more candidates, no accuracy gain
  beyond the guarantee;
* ``× 1``   — the paper's choice;
* ``× 4``   — coarser than the analysis permits: fewer candidates, and
  the measured ratio is allowed to (and eventually does) drift past the
  per-block optimum.

Measured via a dense/coarse sweep of ε' inside a fixed-ε run (the gap is
the only ε'-dependent quantity that changes across columns, because we
pin the ``u`` schedule and hitting rate).
"""

import numpy as np

from repro.analysis import format_table
from repro.params import UlamParams
from repro.strings import ulam_distance
from repro.ulam import UlamConfig, combine_tuples, make_block_payload, \
    run_block_machine
from repro.workloads.permutations import planted_pair

from .conftest import run_once

N = 256
X = 0.4
EPS = 0.5


def _run_with_gap_scale(s, t, params, scale):
    """Run Algorithm 1 + 2 with the grid gap scaled by ``scale``."""
    pos_t = {int(v): i for i, v in enumerate(t.tolist())}
    cfg = UlamConfig.paper()  # no caps: the grid is the only variable
    B = params.block_size
    tuples = []
    n_candidates = 0
    for lo in range(0, N, B):
        hi = min(lo + B, N)
        positions = np.array([pos_t.get(int(v), -1) for v in s[lo:hi]],
                             dtype=np.int64)
        # scale eps' only where it controls the grid: feed a scaled
        # eps_prime but keep the paper's u schedule and hitting rate
        payload = make_block_payload(
            lo, hi, positions, N,
            params.eps_prime * scale,
            params.u_guesses(), params.hitting_rate, seed=7, config=cfg)
        out = run_block_machine(payload)
        n_candidates += len(out)
        tuples.extend(out)
    return combine_tuples(tuples, N, N), n_candidates


def _run():
    s, t, _ = planted_pair(N, N // 8, seed=13, style="mixed")
    params = UlamParams(n=N, x=X, eps=EPS)
    exact = ulam_distance(s, t)
    rows = []
    for scale in (0.5, 1.0, 2.0, 4.0):
        answer, n_candidates = _run_with_gap_scale(s, t, params, scale)
        rows.append({
            "gap_scale": scale,
            "exact": exact,
            "answer": answer,
            "ratio": answer / max(exact, 1),
            "candidates": n_candidates,
        })
    return rows


def bench_gap_ablation(benchmark, report):
    rows = run_once(benchmark, _run)
    lines = [
        "Gap-grid ablation (Algorithm 1's G_i = eps'·u_i design choice)",
        f"n = {N}, x = {X}, eps = {EPS}; grid scaled by the first column",
        "",
        format_table(
            ["gap_scale", "exact", "answer", "ratio", "candidates"],
            [[r[k] for k in ("gap_scale", "exact", "answer", "ratio",
                             "candidates")] for r in rows]),
        "",
        "denser grids buy candidates, not accuracy (the guarantee already"
        " binds); coarser grids shed candidates and let the ratio drift"
        " toward the coarsened guarantee 1 + O(scale·eps).",
    ]
    report("E14_gap_ablation", "\n".join(lines))

    by_scale = {r["gap_scale"]: r for r in rows}
    # candidate counts decrease monotonically as the grid coarsens
    cands = [by_scale[sc]["candidates"] for sc in (0.5, 1.0, 2.0, 4.0)]
    assert cands == sorted(cands, reverse=True)
    # the paper's scale meets its guarantee
    assert by_scale[1.0]["ratio"] <= 1 + EPS
    # coarsened grids stay within their (coarsened) guarantee
    assert by_scale[4.0]["ratio"] <= 1 + 4.0 * EPS
